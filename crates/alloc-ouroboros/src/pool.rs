//! The chunk pool: Ouroboros' bottom layer.
//!
//! "The manageable memory area is split into equally-sized chunks (per
//! default this is 8 KiB)" (paper §2.10). Chunks are handed out from a bump
//! frontier and — crucially for the chunk-based variants and for queue
//! virtualization — can be returned and reused for *any* purpose via a
//! lock-free Treiber stack.

use gpumem_core::sync::{AtomicU32, AtomicU64, Ordering};

/// Chunk size in bytes (the paper's default).
pub const CHUNK_BYTES: u64 = 8192;
/// Maximum pages per chunk (smallest page size 16 B).
pub const MAX_PAGES: u32 = (CHUNK_BYTES / 16) as u32;
/// Chunk `class` metadata: not assigned to any page size.
pub const CLASS_NONE: u32 = u32::MAX;
/// Chunk `class` metadata: used as virtualized-queue storage.
pub const CLASS_QUEUE: u32 = u32::MAX - 1;
/// `free_pages` sentinel while a chunk is being reclaimed.
pub const COUNT_LOCK: u32 = 0x4000_0000;

const NO_CHUNK: u32 = u32::MAX;

/// Per-chunk metadata (side arrays, mirroring the original's chunk index).
pub struct ChunkMeta {
    /// Page-size class index served by this chunk (`CLASS_*` sentinels).
    pub class: AtomicU32,
    /// Free pages remaining (chunk-based variants; [`COUNT_LOCK`] while
    /// reclaiming).
    pub free_pages: AtomicU32,
    /// Page usage bits (1 = allocated); 512 bits cover the smallest pages.
    pub bits: [AtomicU32; (MAX_PAGES / 32) as usize],
    /// Treiber-stack link for the reuse stack.
    next: AtomicU32,
}

impl ChunkMeta {
    fn new() -> Self {
        ChunkMeta {
            class: AtomicU32::new(CLASS_NONE),
            free_pages: AtomicU32::new(0),
            bits: std::array::from_fn(|_| AtomicU32::new(0)),
            next: AtomicU32::new(NO_CHUNK),
        }
    }

    /// Marks page `slot` allocated; `false` if it already was (double
    /// allocation — indicates a stale queue entry).
    pub fn set_used(&self, slot: u32) -> bool {
        let w = (slot / 32) as usize;
        self.bits[w].fetch_or(1 << (slot % 32), Ordering::AcqRel) & (1 << (slot % 32)) == 0
    }

    /// Clears page `slot`; `false` on double free.
    pub fn clear_used(&self, slot: u32) -> bool {
        let w = (slot / 32) as usize;
        self.bits[w].fetch_and(!(1 << (slot % 32)), Ordering::AcqRel) & (1 << (slot % 32)) != 0
    }

    /// Resets all usage bits (reclaim path; caller holds the lock sentinel).
    pub fn reset_bits(&self) {
        for b in &self.bits {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// The pool of 8 KiB chunks covering `[0, chunks·8 KiB)` of the heap.
pub struct ChunkPool {
    chunks: u32,
    /// Chunks currently manageable; grows at runtime up to `chunks`
    /// (Ouroboros is one of the two resizable managers in the survey, §6).
    active: AtomicU32,
    frontier: AtomicU32,
    /// Treiber stack head: `(tag << 32) | chunk_idx` to defeat ABA.
    reuse_head: AtomicU64,
    meta: Box<[ChunkMeta]>,
}

impl ChunkPool {
    /// A pool of `chunks` chunks, all immediately manageable.
    pub fn new(chunks: u32) -> Self {
        Self::with_initial(chunks, chunks)
    }

    /// A pool of `chunks` chunks of which only `initial` are manageable
    /// until [`ChunkPool::grow`] releases more.
    pub fn with_initial(chunks: u32, initial: u32) -> Self {
        assert!(chunks >= 1);
        let initial = initial.clamp(1, chunks);
        ChunkPool {
            chunks,
            active: AtomicU32::new(initial),
            frontier: AtomicU32::new(0),
            reuse_head: AtomicU64::new(u64::from(NO_CHUNK)),
            meta: (0..chunks).map(|_| ChunkMeta::new()).collect(),
        }
    }

    /// Total chunks currently manageable.
    pub fn chunks(&self) -> u32 {
        self.active.load(Ordering::Acquire)
    }

    /// Makes `add` more chunks manageable; returns how many were actually
    /// added (0 when the backing heap is exhausted).
    pub fn grow(&self, add: u32) -> u32 {
        let mut cur = self.active.load(Ordering::Acquire);
        loop {
            if cur >= self.chunks {
                return 0;
            }
            let new = cur.saturating_add(add).min(self.chunks);
            match self.active.compare_exchange(cur, new, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return new - cur,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Metadata of chunk `idx`.
    pub fn meta(&self, idx: u32) -> &ChunkMeta {
        &self.meta[idx as usize]
    }

    /// Byte offset of chunk `idx`.
    pub fn chunk_base(&self, idx: u32) -> u64 {
        idx as u64 * CHUNK_BYTES
    }

    /// Acquires a chunk: reuse stack first ("can efficiently reuse empty
    /// chunks for all purposes"), then the bump frontier.
    pub fn acquire(&self, class: u32) -> Option<u32> {
        // Pop from the reuse stack.
        let mut head = self.reuse_head.load(Ordering::Acquire);
        loop {
            let idx = head as u32;
            if idx == NO_CHUNK {
                break;
            }
            let next = self.meta[idx as usize].next.load(Ordering::Acquire);
            let new_head = ((head >> 32).wrapping_add(1) << 32) | u64::from(next);
            match self.reuse_head.compare_exchange_weak(
                head,
                new_head,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.meta[idx as usize].class.store(class, Ordering::Release);
                    return Some(idx);
                }
                Err(actual) => head = actual,
            }
        }
        // Bump a fresh chunk (bounded by the manageable prefix).
        let idx = self.frontier.fetch_add(1, Ordering::AcqRel);
        if idx >= self.active.load(Ordering::Acquire) {
            self.frontier.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        self.meta[idx as usize].class.store(class, Ordering::Release);
        Some(idx)
    }

    /// Returns a chunk for arbitrary reuse.
    pub fn release(&self, idx: u32) {
        let meta = &self.meta[idx as usize];
        meta.class.store(CLASS_NONE, Ordering::Release);
        let mut head = self.reuse_head.load(Ordering::Acquire);
        loop {
            meta.next.store(head as u32, Ordering::Release);
            let new_head = ((head >> 32).wrapping_add(1) << 32) | u64::from(idx);
            match self.reuse_head.compare_exchange_weak(
                head,
                new_head,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    /// Chunks handed out so far minus those on the reuse stack (approx.).
    pub fn allocated_chunks(&self) -> u32 {
        self.frontier.load(Ordering::Relaxed).min(self.active.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_then_exhaust() {
        let p = ChunkPool::new(3);
        assert_eq!(p.acquire(0), Some(0));
        assert_eq!(p.acquire(1), Some(1));
        assert_eq!(p.acquire(2), Some(2));
        assert_eq!(p.acquire(3), None);
        assert_eq!(p.meta(1).class.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn release_enables_reuse_for_any_class() {
        let p = ChunkPool::new(2);
        let a = p.acquire(0).unwrap();
        let _b = p.acquire(0).unwrap();
        assert_eq!(p.acquire(0), None);
        p.release(a);
        assert_eq!(p.meta(a).class.load(Ordering::Relaxed), CLASS_NONE);
        assert_eq!(p.acquire(5), Some(a), "reused chunk, new class");
        assert_eq!(p.meta(a).class.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn reuse_stack_is_lifo() {
        let p = ChunkPool::new(4);
        for _ in 0..4 {
            p.acquire(0);
        }
        p.release(1);
        p.release(3);
        assert_eq!(p.acquire(0), Some(3));
        assert_eq!(p.acquire(0), Some(1));
    }

    #[test]
    fn usage_bits_detect_double_ops() {
        let p = ChunkPool::new(1);
        let c = p.acquire(0).unwrap();
        let m = p.meta(c);
        assert!(m.set_used(7));
        assert!(!m.set_used(7), "already used");
        assert!(m.clear_used(7));
        assert!(!m.clear_used(7), "double free");
    }

    #[test]
    fn chunk_base_math() {
        let p = ChunkPool::new(8);
        assert_eq!(p.chunk_base(0), 0);
        assert_eq!(p.chunk_base(3), 3 * 8192);
    }

    #[test]
    fn concurrent_acquire_release_conserves_chunks() {
        let p = std::sync::Arc::new(ChunkPool::new(64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                let mut held = Vec::new();
                for i in 0..5000 {
                    if i % 3 != 2 {
                        if let Some(c) = p.acquire(1) {
                            held.push(c);
                        }
                    } else if let Some(c) = held.pop() {
                        p.release(c);
                    }
                }
                held
            }));
        }
        let mut all: Vec<u32> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "a chunk was handed out twice");
        assert!(n <= 64);
    }
}

/// Model-checked interleaving suite (built with `RUSTFLAGS="--cfg loom"`).
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use gpumem_core::sync::{model, thread};
    use std::sync::Arc;

    /// Racing acquires (reuse-stack pop vs. frontier bump) hand out
    /// distinct chunks.
    #[test]
    fn concurrent_acquires_are_distinct() {
        model(|| {
            let pool = Arc::new(ChunkPool::new(4));
            // Seed the reuse stack with one released chunk so one racer can
            // pop while the other bumps.
            let seeded = pool.acquire(0).expect("seed acquire");
            pool.release(seeded);
            let spawn_acq = || {
                let pool = pool.clone();
                thread::spawn(move || pool.acquire(1))
            };
            let h1 = spawn_acq();
            let h2 = spawn_acq();
            let a = h1.join().unwrap();
            let b = h2.join().unwrap();
            let (a, b) = (a.expect("acquire a"), b.expect("acquire b"));
            assert_ne!(a, b, "double-allocated chunk {a}");
        });
    }

    /// Acquire racing a release: the tagged head (ABA guard) must keep the
    /// Treiber stack consistent — the released chunk is acquirable exactly
    /// once afterwards.
    #[test]
    fn release_vs_acquire_keeps_stack_consistent() {
        model(|| {
            let pool = Arc::new(ChunkPool::with_initial(4, 2));
            let c0 = pool.acquire(0).expect("c0");
            let releaser = {
                let pool = pool.clone();
                thread::spawn(move || pool.release(c0))
            };
            let acquirer = {
                let pool = pool.clone();
                thread::spawn(move || pool.acquire(1))
            };
            releaser.join().unwrap();
            let got = acquirer.join().unwrap().expect("pool has capacity");
            // Drain: every remaining acquire must be distinct from `got`.
            let mut seen = vec![got];
            while let Some(c) = pool.acquire(2) {
                assert!(!seen.contains(&c), "chunk {c} double-allocated");
                seen.push(c);
                if seen.len() > 8 {
                    panic!("pool handed out more chunks than exist");
                }
            }
        });
    }
}
