//! # alloc-ouroboros — Ouroboros (Winter et al., 2020)
//!
//! Paper §2.10: "Ouroboros extends the queueing concepts and memory manager
//! found in faimGraph and instantiates one queue per supported page size.
//! The manageable memory area is split into equally-sized chunks (per
//! default this is 8 KiB). Each queue can either manage pages directly or
//! chunks with free pages."
//!
//! Six variants = two managers × three queue designs:
//!
//! | | Standard | Virtualized array | Virtualized linked |
//! |---|---|---|---|
//! | **page-based**  | `Ouro-S-P` | `Ouro-VA-P` | `Ouro-VL-P` |
//! | **chunk-based** | `Ouro-S-C` | `Ouro-VA-C` | `Ouro-VL-C` |
//!
//! * The **page-based** manager queues page indices directly: "fast and
//!   efficient, but lacks the reusability of chunks once they have been
//!   assigned to a page size."
//! * The **chunk-based** manager queues chunk indices with free pages: a
//!   "two-stage access design (allocate from chunk in queue)" that "trades
//!   allocation speed for memory efficiency but can efficiently reuse empty
//!   chunks for all purposes."
//! * Queue storage is either **static** (`S`, with the capacity burden the
//!   paper describes) or **virtualized** onto dynamic chunks (`VA`, `VL`)
//!   — see [`queues`].
//!
//! Page sizes are powers of two from 16 B to 8 KiB; "larger allocations are
//! relayed to the CUDA-Allocator", which manages a reserved section at the
//! top of the heap. ("Multiple instances of Ouroboros (with different page
//! size ranges) can be instantiated simultaneously to allow for larger
//! allocation sizes" — see the `ouroboros_tour` example in the facade
//! crate.)

// Also enforced workspace-wide; restated here so the audit
// guarantee survives if this crate is ever built out of tree.
#![deny(unsafe_op_in_unsafe_fn)]

use gpumem_core::sync::Ordering;
use std::sync::Arc;

use alloc_cuda::CudaAllocModel;
use gpumem_core::util::next_pow2;
use gpumem_core::{
    AllocError, Counter, DeviceAllocator, DeviceHeap, DevicePtr, ManagerInfo, Metrics,
    RegisterFootprint, ThreadCtx,
};

pub mod pool;
pub mod queues;

use pool::{ChunkPool, CHUNK_BYTES, COUNT_LOCK};
use queues::{IndexQueue, StandardQueue, VirtArrayQueue, VirtLinkedQueue};

/// Supported page sizes: 16 B … 8192 B (powers of two).
pub const NUM_CLASSES: usize = 10;
/// Smallest page size.
pub const MIN_PAGE: u64 = 16;
/// Largest page size (== chunk size).
pub const MAX_PAGE: u64 = CHUNK_BYTES;
/// Page-code stride: page codes are `chunk * 512 + slot`.
const CODE_STRIDE: u32 = 512;

/// The Ouroboros manager, generic over queue design and manager mode.
pub struct Ouroboros<Q: IndexQueue, const CHUNKED: bool> {
    heap: Arc<DeviceHeap>,
    pool: ChunkPool,
    queues: Box<[Q]>,
    cuda_base: u64,
    cuda: CudaAllocModel,
    metrics: Metrics,
}

/// `Ouro-S-P`: standard queues, page-based.
pub type OuroSP = Ouroboros<StandardQueue, false>;
/// `Ouro-S-C`: standard queues, chunk-based.
pub type OuroSC = Ouroboros<StandardQueue, true>;
/// `Ouro-VA-P`: virtualized array-hierarchy queues, page-based.
pub type OuroVAP = Ouroboros<VirtArrayQueue, false>;
/// `Ouro-VA-C`: virtualized array-hierarchy queues, chunk-based.
pub type OuroVAC = Ouroboros<VirtArrayQueue, true>;
/// `Ouro-VL-P`: virtualized linked-chunk queues, page-based.
pub type OuroVLP = Ouroboros<VirtLinkedQueue, false>;
/// `Ouro-VL-C`: virtualized linked-chunk queues, chunk-based.
pub type OuroVLC = Ouroboros<VirtLinkedQueue, true>;

/// Locals live in the page-based `malloc` (register proxy ≈ 40 registers).
#[repr(C)]
struct MallocFramePaged {
    size: u64,
    class_idx: u32,
    page_size: u32,
    code: u32,
    chunk: u32,
    slot: u32,
    pages: u32,
    queue_front: u64,
    queue_back: u64,
    storage_chunk: u64,
    entry_off: u64,
    retries: u32,
    enq_state: u32,
    base: u64,
    result: u64,
    spill: [u64; 9],
}

/// Locals live in the chunk-based `malloc` (register proxy ≈ 50 registers —
/// the two-stage access keeps both queue and bitmap state live).
#[repr(C)]
struct MallocFrameChunked {
    size: u64,
    class_idx: u32,
    page_size: u32,
    chunk: u32,
    slot: u32,
    pages: u32,
    free_count: u32,
    bitmap_word: u32,
    bitmap_idx: u32,
    queue_front: u64,
    queue_back: u64,
    storage_chunk: u64,
    entry_off: u64,
    retries: u32,
    requeue: u32,
    enq_state: u32,
    reserve_cas: u64,
    base: u64,
    result: u64,
    valid_mask: u32,
    stale: u32,
    spill: [u64; 11],
}

/// Locals live in `free` (register proxy ≈ 22 registers).
#[repr(C)]
struct FreeFrame {
    ptr: u64,
    chunk: u32,
    class_idx: u32,
    slot: u32,
    page_size: u32,
    prev_free: u32,
    code: u32,
    queue_back: u64,
    entry_off: u64,
    state: u64,
    spill: [u64; 1],
}

impl<Q: IndexQueue, const CHUNKED: bool> Ouroboros<Q, CHUNKED> {
    /// Creates the manager over all of `heap`. A small slice at the top
    /// (1/32, at least one chunk) backs the CUDA-Allocator model that
    /// relayed oversize requests go to — in the original that relay hits
    /// the CUDA runtime's own heap, so the manageable area keeps nearly
    /// the whole region (the paper's Fig. 11b shows ≥ 98 % utilization).
    pub fn new(heap: Arc<DeviceHeap>) -> Self {
        let len = heap.len();
        assert!(len >= 4 * CHUNK_BYTES, "heap too small for Ouroboros");
        let cuda_chunks = ((len / 32) / CHUNK_BYTES).max(1);
        let chunks = (len / CHUNK_BYTES - cuda_chunks) as u32;
        let cuda_base = chunks as u64 * CHUNK_BYTES;
        let capacity_hint = (cuda_base / MIN_PAGE).max(1024);
        let cuda = CudaAllocModel::with_region(Arc::clone(&heap), cuda_base, len - cuda_base);
        Ouroboros {
            heap,
            pool: ChunkPool::new(chunks),
            queues: (0..NUM_CLASSES).map(|_| Q::create(capacity_hint)).collect(),
            cuda_base,
            cuda,
            metrics: Metrics::disabled(),
        }
    }

    /// Attaches a contention-observability handle. The embedded
    /// CUDA-Allocator section shares the counters through
    /// [`Metrics::relay`], so relayed oversize requests contribute
    /// structural counters without double-counting
    /// `malloc_calls`/`free_calls`.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.cuda.set_metrics(metrics.relay());
        self.metrics = metrics;
        self
    }

    /// Convenience constructor owning its heap.
    pub fn with_capacity(len: u64) -> Self {
        Self::new(Arc::new(DeviceHeap::new(len)))
    }

    /// Creates the manager with only `initial_chunks` of the chunk area
    /// manageable; the rest becomes available through
    /// [`DeviceAllocator::grow`] ("multiple instances … can be
    /// instantiated" — growth covers the simpler same-range case).
    pub fn with_initial_chunks(heap: Arc<DeviceHeap>, initial_chunks: u32) -> Self {
        let a = Self::new(heap);
        let total = a.pool.chunks();
        let pool = ChunkPool::with_initial(total, initial_chunks);
        Ouroboros { pool, ..a }
    }

    fn class_index(size: u64) -> usize {
        let ps = next_pow2(size.max(MIN_PAGE));
        (ps.trailing_zeros() - MIN_PAGE.trailing_zeros()) as usize
    }

    fn page_size(class_idx: usize) -> u64 {
        MIN_PAGE << class_idx
    }

    fn pages_per_chunk(class_idx: usize) -> u32 {
        (CHUNK_BYTES / Self::page_size(class_idx)) as u32
    }

    fn page_ptr(&self, chunk: u32, class_idx: usize, slot: u32) -> DevicePtr {
        DevicePtr::new(self.pool.chunk_base(chunk) + slot as u64 * Self::page_size(class_idx))
    }

    /// Carves a fresh chunk for `class_idx`; returns the pointer to its
    /// first page after queueing the rest (page-based) or the chunk itself
    /// (chunk-based).
    fn carve(&self, sm: u32, class_idx: usize) -> Result<DevicePtr, AllocError> {
        let pages = Self::pages_per_chunk(class_idx);
        let mut spins = 0u64;
        let chunk = match self.pool.acquire(class_idx as u32) {
            Some(c) => c,
            None => {
                return Err(AllocError::OutOfMemory(Self::page_size(class_idx)));
            }
        };
        let meta = self.pool.meta(chunk);
        meta.reset_bits();
        let took = meta.set_used(0);
        debug_assert!(took);
        if CHUNKED {
            meta.free_pages.store(pages - 1, Ordering::Release);
            if pages > 1 {
                // Ignore Full/OutOfChunks: the chunk resurfaces through the
                // free path's has-free transition.
                let _ =
                    self.queues[class_idx].enqueue_with(&self.pool, &self.heap, chunk, &mut spins);
            }
        } else {
            for slot in 1..pages {
                let code = chunk * CODE_STRIDE + slot;
                if self.queues[class_idx]
                    .enqueue_with(&self.pool, &self.heap, code, &mut spins)
                    .is_err()
                {
                    // Static-queue capacity drawback (§2.10): pages beyond
                    // the queue's capacity are unreachable until freed.
                    break;
                }
            }
        }
        self.metrics.add(sm, Counter::QueueSpins, spins);
        Ok(self.page_ptr(chunk, class_idx, 0))
    }

    fn malloc_paged(&self, sm: u32, class_idx: usize) -> Result<DevicePtr, AllocError> {
        let limit = self.pool.chunks() as u64 * Self::pages_per_chunk(class_idx) as u64 + 64;
        let (mut spins, mut retries) = (0u64, 0u64);
        let flush = |spins: u64, retries: u64| {
            self.metrics.add(sm, Counter::QueueSpins, spins);
            self.metrics.add(sm, Counter::CasRetries, retries);
            self.metrics.record_retries(sm, retries);
        };
        for _ in 0..limit {
            match self.queues[class_idx].dequeue_with(&self.pool, &self.heap, &mut spins) {
                Some(code) => {
                    let chunk = code / CODE_STRIDE;
                    let slot = code % CODE_STRIDE;
                    let meta = self.pool.meta(chunk);
                    if meta.class.load(Ordering::Acquire) != class_idx as u32
                        || !meta.set_used(slot)
                    {
                        retries += 1;
                        continue; // stale/duplicate entry
                    }
                    flush(spins, retries);
                    return Ok(self.page_ptr(chunk, class_idx, slot));
                }
                None => {
                    // An unsuccessful dequeue is a queue-retry iteration:
                    // the device code re-spins the queue after expansion.
                    spins += 1;
                    flush(spins, retries);
                    return self.carve(sm, class_idx);
                }
            }
        }
        flush(spins, retries);
        Err(AllocError::Contention("Ouroboros page queue"))
    }

    fn malloc_chunked(&self, sm: u32, class_idx: usize) -> Result<DevicePtr, AllocError> {
        let pages = Self::pages_per_chunk(class_idx);
        let limit = self.pool.chunks() as u64 * 2 + 64;
        let (mut spins, mut retries) = (0u64, 0u64);
        let flush = |spins: u64, retries: u64| {
            self.metrics.add(sm, Counter::QueueSpins, spins);
            self.metrics.add(sm, Counter::CasRetries, retries);
            self.metrics.record_retries(sm, retries);
        };
        for _ in 0..limit {
            let chunk =
                match self.queues[class_idx].dequeue_with(&self.pool, &self.heap, &mut spins) {
                    Some(c) => c,
                    None => {
                        // As in the paged path: an empty dequeue re-spins
                        // the queue after the expansion.
                        spins += 1;
                        flush(spins, retries);
                        return self.carve(sm, class_idx);
                    }
                };
            let meta = self.pool.meta(chunk);
            if meta.class.load(Ordering::Acquire) != class_idx as u32 {
                retries += 1;
                continue; // reclaimed & reused elsewhere
            }
            // Stage 1: reserve a page on the chunk.
            let mut c = meta.free_pages.load(Ordering::Acquire);
            let reserved = loop {
                if c == 0 || c >= COUNT_LOCK {
                    break false;
                }
                match meta.free_pages.compare_exchange_weak(
                    c,
                    c - 1,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => break true,
                    Err(actual) => {
                        retries += 1;
                        c = actual;
                    }
                }
            };
            if !reserved {
                retries += 1;
                continue;
            }
            // Post-reservation validation: the chunk may have been
            // reclaimed and reassigned between the class check and the
            // reservation; holding a reservation now pins it (the reclaim
            // CAS requires a full free count).
            if meta.class.load(Ordering::Acquire) != class_idx as u32 {
                meta.free_pages.fetch_add(1, Ordering::AcqRel);
                retries += 1;
                continue;
            }
            // Stage 2: claim a concrete page bit.
            let mut slot = None;
            'words: for w in 0..pages.div_ceil(32) {
                let word = &meta.bits[w as usize];
                loop {
                    let v = word.load(Ordering::Acquire);
                    let tail = pages - w * 32;
                    let valid = if tail >= 32 { u32::MAX } else { (1u32 << tail) - 1 };
                    let free = !v & valid;
                    if free == 0 {
                        break;
                    }
                    let bit = free.trailing_zeros();
                    if word.fetch_or(1 << bit, Ordering::AcqRel) & (1 << bit) == 0 {
                        slot = Some(w * 32 + bit);
                        break 'words;
                    }
                    retries += 1;
                }
            }
            // memlint: allow(hot-path-panic) — the counted reservation above guarantees at least one free page bit remains, so the scan always finds a slot
            let slot = slot.expect("reservation guarantees a free page bit");
            // Two-stage design: hand the chunk back if it still has room.
            if c - 1 > 0 {
                let _ =
                    self.queues[class_idx].enqueue_with(&self.pool, &self.heap, chunk, &mut spins);
            }
            flush(spins, retries);
            return Ok(self.page_ptr(chunk, class_idx, slot));
        }
        flush(spins, retries);
        Err(AllocError::Contention("Ouroboros chunk queue"))
    }

    fn malloc_inner(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        if size == 0 {
            return Err(AllocError::UnsupportedSize(0));
        }
        if size > MAX_PAGE {
            // "Larger allocations are relayed to the CUDA-Allocator."
            self.metrics.tick(ctx.sm, Counter::OomFallbacks);
            return self.cuda.malloc(ctx, size);
        }
        let class_idx = Self::class_index(size);
        if CHUNKED {
            self.malloc_chunked(ctx.sm, class_idx)
        } else {
            self.malloc_paged(ctx.sm, class_idx)
        }
    }

    fn free_inner(&self, ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
        if ptr.is_null() || ptr.offset() >= self.heap.len() {
            return Err(AllocError::InvalidPointer);
        }
        if ptr.offset() >= self.cuda_base {
            return self.cuda.free(ctx, ptr);
        }
        let chunk = (ptr.offset() / CHUNK_BYTES) as u32;
        let meta = self.pool.meta(chunk);
        let class = meta.class.load(Ordering::Acquire);
        if class as usize >= NUM_CLASSES {
            return Err(AllocError::InvalidPointer);
        }
        let class_idx = class as usize;
        let ps = Self::page_size(class_idx);
        let within = ptr.offset() - self.pool.chunk_base(chunk);
        if !within.is_multiple_of(ps) {
            return Err(AllocError::InvalidPointer);
        }
        let slot = (within / ps) as u32;
        if !meta.clear_used(slot) {
            return Err(AllocError::InvalidPointer);
        }
        let mut spins = 0u64;
        if CHUNKED {
            let pages = Self::pages_per_chunk(class_idx);
            let prev = meta.free_pages.fetch_add(1, Ordering::AcqRel);
            if prev == 0 {
                // Chunk regained free pages: put it back in circulation.
                let _ =
                    self.queues[class_idx].enqueue_with(&self.pool, &self.heap, chunk, &mut spins);
            } else if prev + 1 == pages {
                // Fully free: reclaim for arbitrary reuse.
                if meta
                    .free_pages
                    .compare_exchange(pages, COUNT_LOCK, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    self.pool.release(chunk);
                } else {
                    // Lost the reclaim race to a concurrent malloc.
                    self.metrics.tick(ctx.sm, Counter::CasRetries);
                }
            }
        } else {
            // Page-based: the page simply goes back to its size's queue.
            let code = chunk * CODE_STRIDE + slot;
            let _ = self.queues[class_idx].enqueue_with(&self.pool, &self.heap, code, &mut spins);
        }
        self.metrics.add(ctx.sm, Counter::QueueSpins, spins);
        Ok(())
    }

    /// Chunks the bump frontier has handed out (diagnostics).
    pub fn allocated_chunks(&self) -> u32 {
        self.pool.allocated_chunks()
    }

    fn variant() -> String {
        format!("{}-{}", Q::tag(), if CHUNKED { "C" } else { "P" })
    }
}

impl<Q: IndexQueue, const CHUNKED: bool> DeviceAllocator for Ouroboros<Q, CHUNKED> {
    fn info(&self) -> ManagerInfo {
        // Leak the variant string once per instantiation: ManagerInfo wants
        // &'static str and there are exactly six instantiations.
        let variant: &'static str = match (Q::tag(), CHUNKED) {
            ("S", false) => "S-P",
            ("S", true) => "S-C",
            ("VA", false) => "VA-P",
            ("VA", true) => "VA-C",
            ("VL", false) => "VL-P",
            ("VL", true) => "VL-C",
            _ => "?",
        };
        debug_assert_eq!(variant, Self::variant());
        ManagerInfo::builder("Ouroboros")
            .variant(variant)
            .resizable(true)
            .max_native_size(MAX_PAGE)
            .relays_large_to_cuda(true)
            .instrumented(true)
            .build()
    }

    fn heap(&self) -> &DeviceHeap {
        &self.heap
    }

    fn malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        self.metrics.tick(ctx.sm, Counter::MallocCalls);
        let r = self.malloc_inner(ctx, size);
        if r.is_err() {
            self.metrics.tick(ctx.sm, Counter::MallocFailures);
        }
        r
    }

    fn free(&self, ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
        self.metrics.tick(ctx.sm, Counter::FreeCalls);
        let r = self.free_inner(ctx, ptr);
        if r.is_err() {
            self.metrics.tick(ctx.sm, Counter::FreeFailures);
        }
        r
    }

    fn grow(&self, additional: u64) -> Result<(), AllocError> {
        let add = additional.div_ceil(CHUNK_BYTES) as u32;
        if self.pool.grow(add) == 0 {
            return Err(AllocError::OutOfMemory(additional));
        }
        Ok(())
    }

    fn register_footprint(&self) -> RegisterFootprint {
        let malloc_frame = if CHUNKED {
            std::mem::size_of::<MallocFrameChunked>()
        } else {
            std::mem::size_of::<MallocFramePaged>()
        };
        RegisterFootprint::from_frames(malloc_frame, std::mem::size_of::<FreeFrame>())
    }

    fn metrics(&self) -> Metrics {
        self.metrics.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_core::traits::DeviceAllocatorExt;

    const HEAP: u64 = 4 << 20;

    fn ctx() -> ThreadCtx {
        ThreadCtx::host()
    }

    fn each_variant(f: impl Fn(&dyn DeviceAllocator, &str)) {
        f(&OuroSP::with_capacity(HEAP), "S-P");
        f(&OuroSC::with_capacity(HEAP), "S-C");
        f(&OuroVAP::with_capacity(HEAP), "VA-P");
        f(&OuroVAC::with_capacity(HEAP), "VA-C");
        f(&OuroVLP::with_capacity(HEAP), "VL-P");
        f(&OuroVLC::with_capacity(HEAP), "VL-C");
    }

    #[test]
    fn variant_labels() {
        each_variant(|a, v| {
            assert_eq!(a.info().family, "Ouroboros");
            assert_eq!(a.info().variant, v);
        });
    }

    #[test]
    fn class_math() {
        assert_eq!(OuroSP::class_index(1), 0);
        assert_eq!(OuroSP::class_index(16), 0);
        assert_eq!(OuroSP::class_index(17), 1);
        assert_eq!(OuroSP::class_index(8192), 9);
        assert_eq!(OuroSP::page_size(9), 8192);
        assert_eq!(OuroSP::pages_per_chunk(0), 512);
        assert_eq!(OuroSP::pages_per_chunk(9), 1);
    }

    #[test]
    fn roundtrip_all_variants() {
        each_variant(|a, v| {
            for size in [1u64, 16, 100, 1000, 8192] {
                let p = a
                    .checked_malloc(&ctx(), size)
                    .unwrap_or_else(|e| panic!("{v} size {size}: {e}"));
                a.heap().fill(p, size, 0x3c);
                a.free(&ctx(), p).unwrap_or_else(|e| panic!("{v} size {size}: {e}"));
            }
        });
    }

    #[test]
    fn pages_are_power_of_two_aligned() {
        each_variant(|a, _| {
            let p = a.malloc(&ctx(), 100).unwrap();
            assert_eq!(p.offset() % 128, 0, "100 B rounds to a 128 B page");
        });
    }

    #[test]
    fn page_based_reuses_freed_page_fifo() {
        let a = OuroSP::with_capacity(HEAP);
        let p = a.malloc(&ctx(), 64).unwrap();
        let q = a.malloc(&ctx(), 64).unwrap();
        a.free(&ctx(), p).unwrap();
        a.free(&ctx(), q).unwrap();
        // Queue still holds the rest of the carved chunk first; drain it.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..OuroSP::pages_per_chunk(2) as usize + 2 {
            seen.insert(a.malloc(&ctx(), 64).unwrap());
        }
        assert!(seen.contains(&p) && seen.contains(&q), "freed pages recirculate");
    }

    #[test]
    fn chunk_based_reclaims_empty_chunks_for_other_sizes() {
        let a = OuroSC::with_capacity(HEAP);
        let before = a.allocated_chunks();
        let p = a.malloc(&ctx(), 16).unwrap();
        assert_eq!(a.allocated_chunks(), before + 1);
        a.free(&ctx(), p).unwrap();
        // The chunk went back to the pool; a different size class reuses it
        // rather than bumping the frontier.
        let q = a.malloc(&ctx(), 4096).unwrap();
        assert_eq!(a.allocated_chunks(), before + 1, "chunk reused, not bumped");
        assert_eq!(q.offset() / CHUNK_BYTES, p.offset() / CHUNK_BYTES);
    }

    #[test]
    fn page_based_chunks_stay_assigned() {
        let a = OuroSP::with_capacity(HEAP);
        let before = a.allocated_chunks();
        let p = a.malloc(&ctx(), 16).unwrap();
        a.free(&ctx(), p).unwrap();
        let _q = a.malloc(&ctx(), 4096).unwrap();
        // Page-based cannot recycle the 16 B chunk for 4 KiB pages.
        assert_eq!(a.allocated_chunks(), before + 2, "second chunk required");
    }

    #[test]
    fn oversize_relays_to_cuda_section() {
        each_variant(|a, v| {
            let p = a.malloc(&ctx(), 100_000).unwrap_or_else(|e| panic!("{v}: {e}"));
            assert!(p.offset() >= HEAP * 3 / 4 - CHUNK_BYTES, "{v}: {p:?}");
            a.free(&ctx(), p).unwrap();
        });
    }

    #[test]
    fn double_free_detected() {
        each_variant(|a, v| {
            let p = a.malloc(&ctx(), 64).unwrap();
            a.free(&ctx(), p).unwrap();
            assert_eq!(
                a.free(&ctx(), p),
                Err(AllocError::InvalidPointer),
                "{v}: double free must fail"
            );
        });
    }

    #[test]
    fn invalid_pointers_rejected() {
        let a = OuroVLC::with_capacity(HEAP);
        assert_eq!(a.free(&ctx(), DevicePtr::NULL), Err(AllocError::InvalidPointer));
        assert_eq!(a.free(&ctx(), DevicePtr::new(0)), Err(AllocError::InvalidPointer));
        let p = a.malloc(&ctx(), 64).unwrap();
        assert_eq!(a.free(&ctx(), DevicePtr::new(p.offset() + 8)), Err(AllocError::InvalidPointer));
    }

    #[test]
    fn exhaustion_and_recovery() {
        each_variant(|a, v| {
            let mut ptrs = Vec::new();
            loop {
                match a.malloc(&ctx(), 1024) {
                    Ok(p) => ptrs.push(p),
                    Err(AllocError::OutOfMemory(_)) => break,
                    Err(e) => panic!("{v}: {e}"),
                }
            }
            assert!(ptrs.len() >= 2000, "{v}: only {} KiB-pages fit", ptrs.len());
            for p in ptrs.drain(..) {
                a.free(&ctx(), p).unwrap_or_else(|e| panic!("{v}: {e}"));
            }
            assert!(a.malloc(&ctx(), 1024).is_ok(), "{v}: must recover after frees");
        });
    }

    #[test]
    fn mixed_sizes_do_not_overlap() {
        each_variant(|a, v| {
            let mut spans = Vec::new();
            for i in 0..300u64 {
                let size = 16u64 << (i % 6);
                let p = a.malloc(&ctx(), size).unwrap();
                spans.push((p.offset(), next_pow2(size)));
            }
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(w[0].0 + w[0].1 <= w[1].0, "{v}: overlap {:?} vs {:?}", w[0], w[1]);
            }
        });
    }

    #[test]
    fn concurrent_stress_no_overlap() {
        for chunked in [false, true] {
            let a: Arc<dyn DeviceAllocator> = if chunked {
                Arc::new(OuroVAC::with_capacity(8 << 20))
            } else {
                Arc::new(OuroVAP::with_capacity(8 << 20))
            };
            let mut handles = Vec::new();
            for t in 0..4u32 {
                let a = Arc::clone(&a);
                handles.push(std::thread::spawn(move || {
                    let mut live = Vec::new();
                    for i in 0..2000u32 {
                        let c = ThreadCtx::from_linear(t * 2000 + i, 256, 80);
                        let size = 16u64 << (i % 5);
                        let p = a.malloc(&c, size).expect("8 MiB is plenty");
                        a.heap().fill(p, size, 0x6b);
                        live.push((p, size));
                        if i % 2 == 1 {
                            let (p, _) = live.swap_remove(0);
                            a.free(&c, p).unwrap();
                        }
                    }
                    live.into_iter().map(|(p, s)| (p.offset(), next_pow2(s))).collect::<Vec<_>>()
                }));
            }
            let mut all: Vec<(u64, u64)> =
                handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
            all.sort_unstable();
            for w in all.windows(2) {
                assert!(
                    w[0].0 + w[0].1 <= w[1].0,
                    "chunked={chunked}: overlap {:?} vs {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn grow_extends_manageable_chunks() {
        let heap = Arc::new(DeviceHeap::new(HEAP));
        let a = OuroSP::with_initial_chunks(heap, 2);
        let ctx = ctx();
        // Two chunks: exhaust them with whole-chunk pages.
        let mut ptrs = Vec::new();
        loop {
            match a.malloc(&ctx, 8192) {
                Ok(p) => ptrs.push(p),
                Err(AllocError::OutOfMemory(_)) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(ptrs.len(), 2, "initial window is two chunks");
        a.grow(4 * CHUNK_BYTES).unwrap();
        assert!(a.malloc(&ctx, 8192).is_ok(), "grown area must serve");
        // Growth is bounded by the heap.
        while a.grow(1 << 20).is_ok() {}
        assert!(matches!(a.grow(8192), Err(AllocError::OutOfMemory(_))));
    }

    #[test]
    fn register_footprints_match_survey_ordering() {
        let paged = OuroSP::with_capacity(HEAP).register_footprint();
        let chunked = OuroSC::with_capacity(HEAP).register_footprint();
        assert!(chunked.malloc > paged.malloc, "chunk-based carries more state");
        assert!((35..=55).contains(&paged.malloc), "{paged}");
        assert!((40..=60).contains(&chunked.malloc), "{chunked}");
        assert!((15..=30).contains(&paged.free), "{paged}");
    }
}
