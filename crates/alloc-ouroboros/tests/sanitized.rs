//! All six Ouroboros instantiations under the shadow-heap sanitizer.
//!
//! The queues recycle page/chunk indices; an off-by-one in index→offset
//! translation or a premature re-enqueue shows up as Overlap or DoubleFree
//! in the shadow map.

use alloc_ouroboros::{OuroSC, OuroSP, OuroVAC, OuroVAP, OuroVLC, OuroVLP};
use gpumem_core::sanitize::Sanitized;
use gpumem_core::{DeviceAllocator, ThreadCtx};

fn churn<A: DeviceAllocator>(alloc: A, label: &str) {
    let san = Sanitized::new(alloc);
    let ctx = ThreadCtx::host();
    for cycle in 0..4u64 {
        let ptrs: Vec<_> = (0..64u64)
            .map(|i| san.malloc(&ctx, 16 + ((cycle * 3 + i) % 12) * 80).unwrap())
            .collect();
        // Interleave frees with fresh allocations so recycled indices are
        // reused while neighbours are still live.
        for (i, p) in ptrs.into_iter().enumerate() {
            san.free(&ctx, p).unwrap();
            if i % 4 == 0 {
                let q = san.malloc(&ctx, 128).unwrap();
                san.free(&ctx, q).unwrap();
            }
        }
    }
    let report = san.take_report();
    assert!(report.is_clean(), "{label}: {report}");
    assert_eq!(report.live, 0, "{label}");
}

#[test]
fn ouro_s_p_recycling_is_clean() {
    churn(OuroSP::with_capacity(16 << 20), "Ouro-S-P");
}

#[test]
fn ouro_s_c_recycling_is_clean() {
    churn(OuroSC::with_capacity(16 << 20), "Ouro-S-C");
}

#[test]
fn ouro_va_p_recycling_is_clean() {
    churn(OuroVAP::with_capacity(16 << 20), "Ouro-VA-P");
}

#[test]
fn ouro_va_c_recycling_is_clean() {
    churn(OuroVAC::with_capacity(16 << 20), "Ouro-VA-C");
}

#[test]
fn ouro_vl_p_recycling_is_clean() {
    churn(OuroVLP::with_capacity(16 << 20), "Ouro-VL-P");
}

#[test]
fn ouro_vl_c_recycling_is_clean() {
    churn(OuroVLC::with_capacity(16 << 20), "Ouro-VL-C");
}

#[test]
fn mmap_backed_heap_run_is_clean() {
    use gpumem_core::{DeviceHeap, HeapBackendKind, HeapSpec, ThreadCtx};
    use std::sync::Arc;
    if !HeapBackendKind::Mmap.available() {
        return;
    }
    // Same manager, lazily-committed MAP_NORESERVE substrate: pages must
    // appear zeroed on first touch exactly like the RAM backend's.
    let heap = Arc::new(DeviceHeap::try_new(HeapSpec::mmap(32 << 20)).unwrap());
    let san = Sanitized::new(OuroSP::new(heap));
    let ctx = ThreadCtx::host();
    let ptrs: Vec<_> = (0..128u64)
        .map(|i| {
            let size = 16 + (i % 16) * 48;
            let p = san.malloc(&ctx, size).unwrap();
            san.heap().fill(p, size, (i % 251) as u8 | 1);
            assert_eq!(san.heap().read_u8(p, size - 1), (i % 251) as u8 | 1);
            p
        })
        .collect();
    for p in ptrs {
        san.free(&ctx, p).unwrap();
    }
    let report = san.take_report();
    assert!(report.is_clean(), "{report}");
}
