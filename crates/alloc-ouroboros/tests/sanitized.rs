//! All six Ouroboros instantiations under the shadow-heap sanitizer.
//!
//! The queues recycle page/chunk indices; an off-by-one in index→offset
//! translation or a premature re-enqueue shows up as Overlap or DoubleFree
//! in the shadow map.

use alloc_ouroboros::{OuroSC, OuroSP, OuroVAC, OuroVAP, OuroVLC, OuroVLP};
use gpumem_core::sanitize::Sanitized;
use gpumem_core::{DeviceAllocator, ThreadCtx};

fn churn<A: DeviceAllocator>(alloc: A, label: &str) {
    let san = Sanitized::new(alloc);
    let ctx = ThreadCtx::host();
    for cycle in 0..4u64 {
        let ptrs: Vec<_> = (0..64u64)
            .map(|i| san.malloc(&ctx, 16 + ((cycle * 3 + i) % 12) * 80).unwrap())
            .collect();
        // Interleave frees with fresh allocations so recycled indices are
        // reused while neighbours are still live.
        for (i, p) in ptrs.into_iter().enumerate() {
            san.free(&ctx, p).unwrap();
            if i % 4 == 0 {
                let q = san.malloc(&ctx, 128).unwrap();
                san.free(&ctx, q).unwrap();
            }
        }
    }
    let report = san.take_report();
    assert!(report.is_clean(), "{label}: {report}");
    assert_eq!(report.live, 0, "{label}");
}

#[test]
fn ouro_s_p_recycling_is_clean() {
    churn(OuroSP::with_capacity(16 << 20), "Ouro-S-P");
}

#[test]
fn ouro_s_c_recycling_is_clean() {
    churn(OuroSC::with_capacity(16 << 20), "Ouro-S-C");
}

#[test]
fn ouro_va_p_recycling_is_clean() {
    churn(OuroVAP::with_capacity(16 << 20), "Ouro-VA-P");
}

#[test]
fn ouro_va_c_recycling_is_clean() {
    churn(OuroVAC::with_capacity(16 << 20), "Ouro-VA-C");
}

#[test]
fn ouro_vl_p_recycling_is_clean() {
    churn(OuroVLP::with_capacity(16 << 20), "Ouro-VL-P");
}

#[test]
fn ouro_vl_c_recycling_is_clean() {
    churn(OuroVLC::with_capacity(16 << 20), "Ouro-VL-C");
}
