//! Model-based property tests: every Ouroboros queue implementation must
//! behave exactly like `VecDeque` under arbitrary operation sequences
//! (modulo capacity limits, which only cause clean `Full`/`OutOfChunks`
//! rejections).

use std::collections::VecDeque;
use std::sync::Arc;

use proptest::prelude::*;

use alloc_ouroboros::pool::{ChunkPool, CHUNK_BYTES};
use alloc_ouroboros::queues::{
    IndexQueue, QueueError, StandardQueue, VirtArrayQueue, VirtLinkedQueue,
};
use gpumem_core::DeviceHeap;

#[derive(Clone, Debug)]
enum Op {
    Enqueue(u32),
    Dequeue,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0u32..1_000_000).prop_map(Op::Enqueue),
            2 => Just(Op::Dequeue),
        ],
        1..400,
    )
}

fn run_against_model<Q: IndexQueue>(ops: &[Op]) -> Result<(), TestCaseError> {
    let heap = Arc::new(DeviceHeap::new(32 * CHUNK_BYTES));
    let pool = ChunkPool::new(32);
    let q = Q::create(256);
    let mut model: VecDeque<u32> = VecDeque::new();
    for op in ops {
        match op {
            Op::Enqueue(v) => match q.enqueue(&pool, &heap, *v) {
                Ok(()) => model.push_back(*v),
                Err(QueueError::Full) | Err(QueueError::OutOfChunks) => {
                    // Capacity rejection must not corrupt order; just skip.
                }
            },
            Op::Dequeue => {
                prop_assert_eq!(q.dequeue(&pool, &heap), model.pop_front());
            }
        }
        prop_assert_eq!(q.len(), model.len());
    }
    // Drain completely.
    while let Some(expected) = model.pop_front() {
        prop_assert_eq!(q.dequeue(&pool, &heap), Some(expected));
    }
    prop_assert_eq!(q.dequeue(&pool, &heap), None);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn standard_queue_matches_vecdeque(ops in ops()) {
        run_against_model::<StandardQueue>(&ops)?;
    }

    #[test]
    fn virt_array_queue_matches_vecdeque(ops in ops()) {
        run_against_model::<VirtArrayQueue>(&ops)?;
    }

    #[test]
    fn virt_linked_queue_matches_vecdeque(ops in ops()) {
        run_against_model::<VirtLinkedQueue>(&ops)?;
    }

    /// Whatever the op sequence, the virtualized queues must return all
    /// borrowed storage chunks once drained (at most one parked chunk).
    #[test]
    fn virtualized_queues_return_storage(ops in ops()) {
        let heap = Arc::new(DeviceHeap::new(16 * CHUNK_BYTES));
        let pool = ChunkPool::new(16);
        let q = VirtLinkedQueue::create(0);
        for op in &ops {
            match op {
                Op::Enqueue(v) => { let _ = q.enqueue(&pool, &heap, *v); }
                Op::Dequeue => { let _ = q.dequeue(&pool, &heap); }
            }
        }
        while q.dequeue(&pool, &heap).is_some() {}
        let mut reclaimable = 0;
        while pool.acquire(0).is_some() {
            reclaimable += 1;
        }
        prop_assert!(reclaimable >= 15, "storage leak: only {reclaimable}/16 chunks free");
    }
}
