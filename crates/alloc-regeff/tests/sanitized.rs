//! All four Register-Efficient variants under the shadow-heap sanitizer.
//!
//! Reg-Eff keeps headers *inside* the managed region; splitting and merging
//! rewrite them in place. The sanitizer's redzones sit directly where a
//! header-arithmetic bug would scribble, so a clean run is strong evidence
//! the offset math of each codec (TwoWord / Fused, circular / multi) is
//! sound.

use alloc_regeff::{RegEffC, RegEffCF, RegEffCFM, RegEffCM};
use gpumem_core::sanitize::Sanitized;
use gpumem_core::{DeviceAllocator, ThreadCtx};

fn churn<A: DeviceAllocator>(alloc: A, label: &str) {
    let san = Sanitized::new(alloc);
    let ctx = ThreadCtx::host();
    for cycle in 0..4u64 {
        // Mixed sizes provoke splits; freeing in address order provokes the
        // neighbour merges where stale headers would be read.
        let mut ptrs: Vec<_> = (0..96u64)
            .map(|i| san.malloc(&ctx, 16 + ((cycle * 5 + i) % 24) * 36).unwrap())
            .collect();
        ptrs.sort_unstable();
        for p in ptrs {
            san.free(&ctx, p).unwrap();
        }
    }
    let report = san.take_report();
    assert!(report.is_clean(), "{label}: {report}");
    assert_eq!(report.live, 0, "{label}");
}

#[test]
fn regeff_c_split_merge_churn_is_clean() {
    churn(RegEffC::with_capacity(8 << 20, 8), "RegEff-C");
}

#[test]
fn regeff_cf_split_merge_churn_is_clean() {
    churn(RegEffCF::with_capacity(8 << 20, 8), "RegEff-CF");
}

#[test]
fn regeff_cm_split_merge_churn_is_clean() {
    churn(RegEffCM::with_capacity(8 << 20, 8), "RegEff-CM");
}

#[test]
fn regeff_cfm_split_merge_churn_is_clean() {
    churn(RegEffCFM::with_capacity(8 << 20, 8), "RegEff-CFM");
}

#[test]
fn mmap_backed_heap_run_is_clean() {
    use gpumem_core::{DeviceHeap, HeapBackendKind, HeapSpec, ThreadCtx};
    use std::sync::Arc;
    if !HeapBackendKind::Mmap.available() {
        return;
    }
    // Same manager, lazily-committed MAP_NORESERVE substrate: pages must
    // appear zeroed on first touch exactly like the RAM backend's.
    let heap = Arc::new(DeviceHeap::try_new(HeapSpec::mmap(32 << 20)).unwrap());
    let san = Sanitized::new(RegEffC::new(heap, 80));
    let ctx = ThreadCtx::host();
    let ptrs: Vec<_> = (0..128u64)
        .map(|i| {
            let size = 16 + (i % 16) * 48;
            let p = san.malloc(&ctx, size).unwrap();
            san.heap().fill(p, size, (i % 251) as u8 | 1);
            assert_eq!(san.heap().read_u8(p, size - 1), (i % 251) as u8 | 1);
            p
        })
        .collect();
    for p in ptrs {
        san.free(&ctx, p).unwrap();
    }
    let report = san.take_report();
    assert!(report.is_clean(), "{report}");
}
