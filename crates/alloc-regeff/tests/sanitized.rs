//! All four Register-Efficient variants under the shadow-heap sanitizer.
//!
//! Reg-Eff keeps headers *inside* the managed region; splitting and merging
//! rewrite them in place. The sanitizer's redzones sit directly where a
//! header-arithmetic bug would scribble, so a clean run is strong evidence
//! the offset math of each codec (TwoWord / Fused, circular / multi) is
//! sound.

use alloc_regeff::{RegEffC, RegEffCF, RegEffCFM, RegEffCM};
use gpumem_core::sanitize::Sanitized;
use gpumem_core::{DeviceAllocator, ThreadCtx};

fn churn<A: DeviceAllocator>(alloc: A, label: &str) {
    let san = Sanitized::new(alloc);
    let ctx = ThreadCtx::host();
    for cycle in 0..4u64 {
        // Mixed sizes provoke splits; freeing in address order provokes the
        // neighbour merges where stale headers would be read.
        let mut ptrs: Vec<_> = (0..96u64)
            .map(|i| san.malloc(&ctx, 16 + ((cycle * 5 + i) % 24) * 36).unwrap())
            .collect();
        ptrs.sort_unstable();
        for p in ptrs {
            san.free(&ctx, p).unwrap();
        }
    }
    let report = san.take_report();
    assert!(report.is_clean(), "{label}: {report}");
    assert_eq!(report.live, 0, "{label}");
}

#[test]
fn regeff_c_split_merge_churn_is_clean() {
    churn(RegEffC::with_capacity(8 << 20, 8), "RegEff-C");
}

#[test]
fn regeff_cf_split_merge_churn_is_clean() {
    churn(RegEffCF::with_capacity(8 << 20, 8), "RegEff-CF");
}

#[test]
fn regeff_cm_split_merge_churn_is_clean() {
    churn(RegEffCM::with_capacity(8 << 20, 8), "RegEff-CM");
}

#[test]
fn regeff_cfm_split_merge_churn_is_clean() {
    churn(RegEffCFM::with_capacity(8 << 20, 8), "RegEff-CFM");
}
