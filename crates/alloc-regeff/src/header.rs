//! Chunk header codecs: the standard two-word header and the *fused*
//! single-word header of the CF/CFM variants.
//!
//! Every chunk in the circular list starts with a header carrying
//! (a) an allocation flag and (b) the byte offset of the next chunk
//! (paper §2.5: "Each allocated chunk of memory also carries header
//! information (an allocation flag and the offset to the next chunk) to
//! enable deallocation").
//!
//! * [`TwoWord`] — flag and next-offset in separate 32-bit words
//!   (Reg-Eff-C / -CM). Payload begins 8 bytes into the chunk.
//! * [`Fused`] — "Circular Fused Malloc (Reg-Eff-CF) fuses the two header
//!   words into one if less than 2³¹ allocations can be expected": 31 bits
//!   of next-offset (in 8-byte units) plus 1 allocation bit. Payload begins
//!   4 bytes into the chunk.
//!
//! Consequently neither variant returns 16-byte-aligned memory — the paper
//! calls this out ("none of them do return 16 B aligned memory, leading to
//! issues with vector operations") and the `ManagerInfo` of each variant
//! declares the true value.

use gpumem_core::sync::Ordering;
use gpumem_core::DeviceHeap;

/// Result of a header read: the chunk's state and where the next chunk is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkHeader {
    /// Whether the chunk is currently allocated.
    pub allocated: bool,
    /// Absolute byte offset of the next chunk in the circular list.
    pub next: u64,
}

/// Abstraction over the two header layouts.
///
/// All methods are race-aware: flag transitions use CAS, link updates use
/// atomic stores, and `read` may observe bytes that a concurrent merge has
/// already recycled into payload — callers must validate `next` before
/// following it (see `RegEff::walk`).
pub trait HeaderCodec: Send + Sync + 'static {
    /// Header size in bytes; payload begins at `chunk + SIZE`.
    const SIZE: u64;
    /// Alignment of chunk starts (and granularity of `next` encoding).
    const ALIGN: u64;
    /// Variant-name fragment ("C"/"CF" …) contributed by the codec.
    const FUSED: bool;

    /// Reads the header at `chunk`.
    fn read(heap: &DeviceHeap, chunk: u64) -> ChunkHeader;

    /// Initialises the header at `chunk` (no concurrency: init/split paths
    /// own the chunk).
    fn write(heap: &DeviceHeap, chunk: u64, hdr: ChunkHeader);

    /// Attempts to claim the chunk: CAS flag free→allocated without touching
    /// the link. Returns `false` if the chunk was not free.
    fn try_claim(heap: &DeviceHeap, chunk: u64) -> bool;

    /// Releases the chunk: flag allocated→free (plain atomic store; the
    /// caller owns the chunk).
    fn release(heap: &DeviceHeap, chunk: u64);

    /// Atomically redirects the chunk's link to `next` (caller owns chunk).
    fn set_next(heap: &DeviceHeap, chunk: u64, next: u64);
}

/// Two-word header: `[flag: u32][next_delta: u32]`, deltas in 8-byte units.
pub struct TwoWord;

const FLAG_FREE: u32 = 0;
const FLAG_ALLOCATED: u32 = 1;

impl HeaderCodec for TwoWord {
    const SIZE: u64 = 8;
    const ALIGN: u64 = 8;
    const FUSED: bool = false;

    fn read(heap: &DeviceHeap, chunk: u64) -> ChunkHeader {
        let flag = heap.atomic_u32(chunk).load(Ordering::Acquire);
        let delta = heap.atomic_u32(chunk + 4).load(Ordering::Acquire) as u64;
        ChunkHeader { allocated: flag != FLAG_FREE, next: delta * Self::ALIGN }
    }

    fn write(heap: &DeviceHeap, chunk: u64, hdr: ChunkHeader) {
        debug_assert_eq!(hdr.next % Self::ALIGN, 0);
        heap.atomic_u32(chunk + 4).store((hdr.next / Self::ALIGN) as u32, Ordering::Release);
        heap.atomic_u32(chunk)
            .store(if hdr.allocated { FLAG_ALLOCATED } else { FLAG_FREE }, Ordering::Release);
    }

    fn try_claim(heap: &DeviceHeap, chunk: u64) -> bool {
        heap.atomic_u32(chunk)
            .compare_exchange(FLAG_FREE, FLAG_ALLOCATED, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    fn release(heap: &DeviceHeap, chunk: u64) {
        heap.atomic_u32(chunk).store(FLAG_FREE, Ordering::Release);
    }

    fn set_next(heap: &DeviceHeap, chunk: u64, next: u64) {
        debug_assert_eq!(next % Self::ALIGN, 0);
        heap.atomic_u32(chunk + 4).store((next / Self::ALIGN) as u32, Ordering::Release);
    }
}

/// Fused header: one `u32` = `next_delta << 1 | allocated`, deltas in
/// 8-byte units (chunks still align to 8 so a split of a two-word chunk
/// remains encodable; payload alignment is 4... the chunk base +4).
pub struct Fused;

impl HeaderCodec for Fused {
    const SIZE: u64 = 4;
    const ALIGN: u64 = 8;
    const FUSED: bool = true;

    fn read(heap: &DeviceHeap, chunk: u64) -> ChunkHeader {
        let w = heap.atomic_u32(chunk).load(Ordering::Acquire);
        ChunkHeader { allocated: w & 1 != 0, next: ((w >> 1) as u64) * Self::ALIGN }
    }

    fn write(heap: &DeviceHeap, chunk: u64, hdr: ChunkHeader) {
        debug_assert_eq!(hdr.next % Self::ALIGN, 0);
        let w = (((hdr.next / Self::ALIGN) as u32) << 1) | hdr.allocated as u32;
        heap.atomic_u32(chunk).store(w, Ordering::Release);
    }

    fn try_claim(heap: &DeviceHeap, chunk: u64) -> bool {
        let a = heap.atomic_u32(chunk);
        loop {
            let w = a.load(Ordering::Acquire);
            if w & 1 != 0 {
                return false;
            }
            if a.compare_exchange_weak(w, w | 1, Ordering::AcqRel, Ordering::Relaxed).is_ok() {
                return true;
            }
        }
    }

    fn release(heap: &DeviceHeap, chunk: u64) {
        heap.atomic_u32(chunk).fetch_and(!1u32, Ordering::AcqRel);
    }

    fn set_next(heap: &DeviceHeap, chunk: u64, next: u64) {
        debug_assert_eq!(next % Self::ALIGN, 0);
        let a = heap.atomic_u32(chunk);
        loop {
            let w = a.load(Ordering::Acquire);
            let nw = (((next / Self::ALIGN) as u32) << 1) | (w & 1);
            if a.compare_exchange_weak(w, nw, Ordering::AcqRel, Ordering::Relaxed).is_ok() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> DeviceHeap {
        DeviceHeap::new(4096)
    }

    fn roundtrip<H: HeaderCodec>() {
        let h = heap();
        let hdr = ChunkHeader { allocated: false, next: 1024 };
        H::write(&h, 0, hdr);
        assert_eq!(H::read(&h, 0), hdr);
        let hdr2 = ChunkHeader { allocated: true, next: 2048 };
        H::write(&h, 16, hdr2);
        assert_eq!(H::read(&h, 16), hdr2);
    }

    #[test]
    fn two_word_roundtrip() {
        roundtrip::<TwoWord>();
    }

    #[test]
    fn fused_roundtrip() {
        roundtrip::<Fused>();
    }

    fn claim_release<H: HeaderCodec>() {
        let h = heap();
        H::write(&h, 0, ChunkHeader { allocated: false, next: 512 });
        assert!(H::try_claim(&h, 0));
        assert!(!H::try_claim(&h, 0), "double claim must fail");
        assert!(H::read(&h, 0).allocated);
        assert_eq!(H::read(&h, 0).next, 512, "claim must preserve the link");
        H::release(&h, 0);
        assert!(!H::read(&h, 0).allocated);
        assert!(H::try_claim(&h, 0));
    }

    #[test]
    fn two_word_claim_release() {
        claim_release::<TwoWord>();
    }

    #[test]
    fn fused_claim_release() {
        claim_release::<Fused>();
    }

    fn set_next_preserves_flag<H: HeaderCodec>() {
        let h = heap();
        H::write(&h, 0, ChunkHeader { allocated: true, next: 64 });
        H::set_next(&h, 0, 128);
        let r = H::read(&h, 0);
        assert!(r.allocated);
        assert_eq!(r.next, 128);
    }

    #[test]
    fn two_word_set_next() {
        set_next_preserves_flag::<TwoWord>();
    }

    #[test]
    fn fused_set_next() {
        set_next_preserves_flag::<Fused>();
    }

    #[test]
    fn header_sizes() {
        assert_eq!(TwoWord::SIZE, 8);
        assert_eq!(Fused::SIZE, 4);
        const { assert!(Fused::FUSED && !TwoWord::FUSED) };
    }

    #[test]
    fn fused_concurrent_claims_are_exclusive() {
        let h = std::sync::Arc::new(heap());
        Fused::write(&h, 0, ChunkHeader { allocated: false, next: 8 });
        let wins = gpumem_core::sync::AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    if Fused::try_claim(&h, 0) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1);
    }
}

/// Model-checked interleaving suite (built with `RUSTFLAGS="--cfg loom"`).
///
/// These models run *on a real `DeviceHeap`* — the facade's atomics are
/// `repr(transparent)` over std's, so the heap's pointer-cast atomic views
/// participate in the model checker's scheduling like any other atomic.
/// That makes heap-resident protocols (the in-chunk header flags here)
/// checkable, not just side-table state.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use gpumem_core::sync::{model, thread};
    use std::sync::Arc;

    fn claim_race<C: HeaderCodec>() {
        model(|| {
            let heap = Arc::new(DeviceHeap::new(256));
            C::write(&heap, 0, ChunkHeader { allocated: false, next: 64 });
            let spawn_claim = || {
                let heap = heap.clone();
                thread::spawn(move || C::try_claim(&heap, 0))
            };
            let h1 = spawn_claim();
            let h2 = spawn_claim();
            let a = h1.join().unwrap();
            let b = h2.join().unwrap();
            assert!(a ^ b, "claim must have exactly one winner (got {a}, {b})");
            let hdr = C::read(&heap, 0);
            assert!(hdr.allocated, "winner's flag lost");
            assert_eq!(hdr.next, 64, "claim must not disturb the link word");
        });
    }

    /// Two threads race `try_claim` on the same free chunk: exactly one
    /// wins, and the link survives untouched (two-word layout).
    #[test]
    fn two_word_claim_has_one_winner() {
        claim_race::<TwoWord>();
    }

    /// As above for the fused single-word header, where flag and link share
    /// one CAS target.
    #[test]
    fn fused_claim_has_one_winner() {
        claim_race::<Fused>();
    }

    /// Claim racing the owner's release of a *different* chunk: the fused
    /// header's flag bit and link bits never bleed across chunks.
    #[test]
    fn claim_vs_release_of_neighbour() {
        model(|| {
            let heap = Arc::new(DeviceHeap::new(256));
            Fused::write(&heap, 0, ChunkHeader { allocated: false, next: 64 });
            Fused::write(&heap, 64, ChunkHeader { allocated: true, next: 128 });
            let claimer = {
                let heap = heap.clone();
                thread::spawn(move || Fused::try_claim(&heap, 0))
            };
            let releaser = {
                let heap = heap.clone();
                thread::spawn(move || Fused::release(&heap, 64))
            };
            assert!(claimer.join().unwrap(), "nobody contests chunk 0");
            releaser.join().unwrap();
            let c0 = Fused::read(&heap, 0);
            let c1 = Fused::read(&heap, 64);
            assert!(c0.allocated && c0.next == 64);
            assert!(!c1.allocated && c1.next == 128);
        });
    }
}
