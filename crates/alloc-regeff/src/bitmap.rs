//! Side bitmap of live chunk starts.
//!
//! The original Reg-Eff tolerates a rare race: a walker holding a pointer to
//! a chunk that a concurrent merge absorbs can read recycled payload bytes
//! as a header (the paper classifies Reg-Eff as not entirely stable, §5).
//! The port keeps the in-heap header layout — it is what gives Reg-Eff its
//! register frugality and its fragmentation behaviour — but adds this
//! *side* bitmap of valid chunk-start granules so walkers can validate a
//! position before trusting bytes at it. The bitmap is maintained only by
//! owners (init, split, merge), i.e. with the same exclusivity the header
//! flags already provide, and it lives outside the manageable memory, so it
//! does not perturb the fragmentation measurements.

use gpumem_core::sync::{AtomicU32, Ordering};

/// Granularity of chunk starts in bytes (= header alignment).
pub const GRANULE: u64 = 8;

/// One bit per 8-byte granule of the managed region.
pub struct ChunkStarts {
    words: Box<[AtomicU32]>,
    granules: u64,
}

impl ChunkStarts {
    /// Bitmap for a region of `region_len` bytes (multiple of 8).
    pub fn new(region_len: u64) -> Self {
        let granules = region_len / GRANULE;
        let n_words = granules.div_ceil(32) as usize;
        let words = (0..n_words).map(|_| AtomicU32::new(0)).collect();
        ChunkStarts { words, granules }
    }

    #[inline]
    fn split_index(&self, offset: u64) -> (usize, u32) {
        debug_assert_eq!(offset % GRANULE, 0, "chunk start must be 8-byte aligned");
        let g = offset / GRANULE;
        debug_assert!(g < self.granules);
        ((g / 32) as usize, 1u32 << (g % 32))
    }

    /// Marks `offset` as a live chunk start.
    #[inline]
    pub fn set(&self, offset: u64) {
        let (w, bit) = self.split_index(offset);
        self.words[w].fetch_or(bit, Ordering::Release);
    }

    /// Clears the chunk-start mark at `offset`.
    #[inline]
    pub fn clear(&self, offset: u64) {
        let (w, bit) = self.split_index(offset);
        self.words[w].fetch_and(!bit, Ordering::Release);
    }

    /// Whether `offset` is (still) a live chunk start. Also rejects
    /// unaligned or out-of-range offsets, which makes it the walker's
    /// one-stop validity check for untrusted `next` pointers.
    #[inline]
    pub fn check(&self, offset: u64) -> bool {
        if !offset.is_multiple_of(GRANULE) || offset / GRANULE >= self.granules {
            return false;
        }
        let (w, bit) = self.split_index(offset);
        self.words[w].load(Ordering::Acquire) & bit != 0
    }

    /// Number of live chunk starts (test/diagnostic use; O(words)).
    pub fn count(&self) -> u64 {
        self.words.iter().map(|w| w.load(Ordering::Relaxed).count_ones() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_check_clear() {
        let b = ChunkStarts::new(1024);
        assert!(!b.check(64));
        b.set(64);
        assert!(b.check(64));
        b.clear(64);
        assert!(!b.check(64));
    }

    #[test]
    fn check_rejects_bad_offsets() {
        let b = ChunkStarts::new(1024);
        b.set(0);
        assert!(b.check(0));
        assert!(!b.check(4), "unaligned");
        assert!(!b.check(1024), "out of range");
        assert!(!b.check(u64::MAX - 7), "far out of range");
    }

    #[test]
    fn check_rejects_offsets_in_last_words_slack_bits() {
        // A 1000-byte region has 125 granules, but the last word stores 32
        // bits covering granules 96..128. Offsets for granules 125..127 are
        // aligned AND inside the last word's bit range — `check` must still
        // reject them (a walker chasing a corrupt `next` pointer can land
        // exactly there), without poisoning the valid bits around them.
        let b = ChunkStarts::new(1000);
        b.set(992); // granule 124, the last valid one
        assert!(b.check(992));
        for off in [1000u64, 1008, 1016] {
            assert!(!b.check(off), "granule {} is past the region end", off / GRANULE);
        }
        assert!(b.check(992), "valid neighbour bit untouched");
        // First granule past the whole word range too.
        assert!(!b.check(1024));
    }

    #[test]
    fn exact_word_boundary_region_has_no_slack() {
        // 1024 bytes = 128 granules = exactly 4 words: granule 127 valid,
        // granule 128 (first of a non-existent word) rejected.
        let b = ChunkStarts::new(1024);
        b.set(127 * 8);
        assert!(b.check(127 * 8));
        assert!(!b.check(128 * 8));
    }

    #[test]
    fn count_tracks_population() {
        let b = ChunkStarts::new(4096);
        for off in [0u64, 8, 16, 4088] {
            b.set(off);
        }
        assert_eq!(b.count(), 4);
        b.clear(8);
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn dense_bits_do_not_interfere() {
        let b = ChunkStarts::new(512);
        for g in 0..64u64 {
            b.set(g * 8);
        }
        b.clear(8 * 31);
        for g in 0..64u64 {
            assert_eq!(b.check(g * 8), g != 31);
        }
    }
}

/// Model-checked interleaving suite (built with `RUSTFLAGS="--cfg loom"`).
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use gpumem_core::sync::{model, thread};
    use std::sync::Arc;

    /// Set and clear of *different* granules sharing one bitmap word never
    /// interfere — the fetch_or/fetch_and pair is bit-exact under overlap.
    #[test]
    fn overlapping_set_clear_are_independent() {
        model(|| {
            let b = Arc::new(ChunkStarts::new(512));
            b.set(16); // the bit the clearer will remove
            let setter = {
                let b = b.clone();
                thread::spawn(move || b.set(8))
            };
            let clearer = {
                let b = b.clone();
                thread::spawn(move || b.clear(16))
            };
            setter.join().unwrap();
            clearer.join().unwrap();
            assert!(b.check(8), "concurrent clear wiped a different granule's bit");
            assert!(!b.check(16), "cleared bit resurrected");
            assert_eq!(b.count(), 1);
        });
    }

    /// A walker's `check` racing an owner's `clear` returns a coherent
    /// answer (true or false, never a trap) and converges to false.
    #[test]
    fn check_vs_clear_converges() {
        model(|| {
            let b = Arc::new(ChunkStarts::new(512));
            b.set(64);
            let walker = {
                let b = b.clone();
                thread::spawn(move || b.check(64))
            };
            let owner = {
                let b = b.clone();
                thread::spawn(move || b.clear(64))
            };
            let _seen = walker.join().unwrap(); // either answer is valid mid-race
            owner.join().unwrap();
            assert!(!b.check(64), "bit still set after clear completed");
        });
    }
}
