//! # alloc-regeff — the Register-Efficient allocator of Vinkler & Havran
//!
//! Paper §2.5: a dynamic memory allocator "based on a circular memory pool,
//! organized as a single-linked list". Every chunk carries an in-heap header
//! (allocation flag + offset of the next chunk); the pool is pre-split into
//! a binary-heap-like pattern of chunk sizes so early allocations do not
//! serialise on one giant block. Allocation walks the list from a shared
//! roving offset, claims a free chunk with CAS, and splits it when it is too
//! big; deallocation clears the flag and opportunistically merges with the
//! physically-next chunk (locking it first so no other thread can take it).
//!
//! Four variants, as in the original:
//!
//! | Variant | Header | Offsets |
//! |---|---|---|
//! | `Reg-Eff-C`   (CircularMalloc)            | two words | one shared |
//! | `Reg-Eff-CF`  (Circular Fused Malloc)     | one word  | one shared |
//! | `Reg-Eff-CM`  (Circular Multi Malloc)     | two words | one per SM |
//! | `Reg-Eff-CFM` (Circular Fused Multi)      | one word  | one per SM |
//!
//! The multi variants "trade fragmentation for speed by introducing an array
//! of offsets (one for each SM) instead of just one shared memory offset"
//! and pre-split each SM's sub-heap separately; all sub-heaps remain linked
//! into one circular list.
//!
//! As the paper notes (§5), Reg-Eff does **not** return 16-byte-aligned
//! memory: payloads start right after the 8- or 4-byte header. The
//! `ManagerInfo` of each variant declares the true alignment.
//!
//! The survey also disabled Reg-Eff's warp-coalescing ("this did not work
//! for any of the testcases"); accordingly the port keeps the default
//! per-lane warp path.

// Also enforced workspace-wide; restated here so the audit
// guarantee survives if this crate is ever built out of tree.
#![deny(unsafe_op_in_unsafe_fn)]

use gpumem_core::sync::{AtomicU64, Ordering};
use std::marker::PhantomData;
use std::sync::Arc;

use gpumem_core::util::align_down;
use gpumem_core::{
    AllocError, Counter, DeviceAllocator, DeviceHeap, DevicePtr, ManagerInfo, Metrics,
    RegisterFootprint, ThreadCtx,
};

pub mod bitmap;
pub mod header;

use bitmap::ChunkStarts;
use header::{ChunkHeader, Fused, HeaderCodec, TwoWord};

/// Minimum pre-split chunk size; halving stops below this.
pub const MIN_PRESPLIT: u64 = 4096;
/// A claimed chunk is split when the leftover would be at least this big
/// (the original's "maximum fragmentation constant").
pub const SPLIT_MIN: u64 = 64;
/// Walk gives up (contention error) after this many validation resets.
const MAX_STRIKES: u32 = 8;

/// The circular-list allocator, generic over header codec and offset policy.
pub struct RegEff<H: HeaderCodec, const MULTI: bool> {
    heap: Arc<DeviceHeap>,
    region_len: u64,
    starts: ChunkStarts,
    /// Roving start offsets: one entry (single) or one per SM (multi).
    offsets: Box<[AtomicU64]>,
    metrics: Metrics,
    _codec: PhantomData<H>,
}

/// CircularMalloc — two-word headers, one shared offset.
pub type RegEffC = RegEff<TwoWord, false>;
/// Circular Fused Malloc — fused header, one shared offset.
pub type RegEffCF = RegEff<Fused, false>;
/// Circular Multi Malloc — two-word headers, per-SM offsets.
pub type RegEffCM = RegEff<TwoWord, true>;
/// Circular Fused Multi Malloc — fused header, per-SM offsets.
pub type RegEffCFM = RegEff<Fused, true>;

/// Locals live in `malloc` (register proxy — the headline claim of the
/// original paper is how few of these there are).
#[repr(C)]
struct MallocFrame {
    cur: u64,
    next: u64,
    traversed: u64,
    need: u32,
    strikes: u32,
    extent: u64,
    header_word: u32,
    slot: u32,
    start: u64,
}

/// Locals live in `free`.
#[repr(C)]
struct FreeFrame {
    chunk: u64,
    next: u64,
    newnext: u64,
    header_word: u32,
    merged: u32,
}

impl<H: HeaderCodec, const MULTI: bool> RegEff<H, MULTI> {
    /// Creates the allocator over the whole `heap`, with `num_sms` roving
    /// offsets for the multi variants (ignored by the single variants).
    pub fn new(heap: Arc<DeviceHeap>, num_sms: u32) -> Self {
        let region_len = heap.len();
        assert!(region_len.is_multiple_of(8));
        assert!(
            region_len / 8 < (1 << 31),
            "Reg-Eff headers encode next-offsets in 31 bits of 8-byte units"
        );
        let slots = if MULTI { num_sms.max(1) as usize } else { 1 };
        assert!(
            region_len / slots as u64 >= 2 * MIN_PRESPLIT,
            "heap too small for {slots} Reg-Eff sub-heaps"
        );
        let starts = ChunkStarts::new(region_len);

        // Pre-split each sub-heap into the halving pattern of Figure 4.
        let sub = align_down(region_len / slots as u64, 8);
        let mut boundaries: Vec<u64> = Vec::new();
        let mut offsets = Vec::with_capacity(slots);
        for s in 0..slots {
            let base = s as u64 * sub;
            let len = if s + 1 == slots { region_len - base } else { sub };
            offsets.push(AtomicU64::new(base));
            Self::presplit(base, len, &mut boundaries);
        }
        // Link the chunks circularly (last chunk's next = 0 = first chunk).
        for (i, &b) in boundaries.iter().enumerate() {
            let next = boundaries.get(i + 1).copied().unwrap_or(0);
            H::write(&heap, b, ChunkHeader { allocated: false, next });
        }
        // Publish chunk starts only after all headers exist.
        for &b in &boundaries {
            starts.set(b);
        }

        RegEff {
            heap,
            region_len,
            starts,
            offsets: offsets.into_boxed_slice(),
            metrics: Metrics::disabled(),
            _codec: PhantomData,
        }
    }

    /// Convenience constructor owning its heap.
    pub fn with_capacity(len: u64, num_sms: u32) -> Self {
        Self::new(Arc::new(DeviceHeap::new(len)), num_sms)
    }

    /// Attaches a contention-observability handle (builder style).
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Publishes one walk's contention tally: list hops, lost claims and the
    /// retry histogram sample.
    fn flush_walk(&self, sm: u32, hops: u64, lost: u64) {
        self.metrics.add(sm, Counter::ListHops, hops);
        self.metrics.add(sm, Counter::CasRetries, lost);
        self.metrics.record_retries(sm, lost);
    }

    fn presplit(base: u64, len: u64, out: &mut Vec<u64>) {
        let mut start = base;
        let mut remaining = len;
        while remaining / 2 >= MIN_PRESPLIT {
            let c = align_down(remaining / 2, 8);
            out.push(start);
            start += c;
            remaining -= c;
        }
        out.push(start);
    }

    /// Physical extent of the chunk at `cur` whose header names `next`.
    #[inline]
    fn extent(&self, cur: u64, next: u64) -> u64 {
        if next > cur {
            next - cur
        } else {
            // Only the physically-last chunk wraps (next == 0).
            self.region_len - cur
        }
    }

    /// Live-chunk count (diagnostics/tests).
    pub fn chunk_count(&self) -> u64 {
        self.starts.count()
    }

    fn variant_name() -> &'static str {
        match (H::FUSED, MULTI) {
            (false, false) => "C",
            (true, false) => "CF",
            (false, true) => "CM",
            (true, true) => "CFM",
        }
    }
}

impl<H: HeaderCodec, const MULTI: bool> DeviceAllocator for RegEff<H, MULTI> {
    fn info(&self) -> ManagerInfo {
        ManagerInfo::builder("Reg-Eff")
            .variant(Self::variant_name())
            .alignment(if H::FUSED { 4 } else { 8 })
            .instrumented(true)
            .build()
    }

    fn heap(&self) -> &DeviceHeap {
        &self.heap
    }

    fn malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        self.metrics.tick(ctx.sm, Counter::MallocCalls);
        if size == 0 {
            self.metrics.tick(ctx.sm, Counter::MallocFailures);
            return Err(AllocError::UnsupportedSize(0));
        }
        // Checked inflation: `size + H::SIZE` (then rounding) must not wrap
        // for near-`u64::MAX` requests and masquerade as a small chunk.
        let Some(need) = size.checked_add(H::SIZE).and_then(|n| n.checked_next_multiple_of(8))
        else {
            self.metrics.tick(ctx.sm, Counter::MallocFailures);
            return Err(AllocError::UnsupportedSize(size));
        };
        if need > self.region_len {
            self.metrics.tick(ctx.sm, Counter::MallocFailures);
            return Err(AllocError::UnsupportedSize(size));
        }
        let slot = if MULTI { (ctx.sm as usize) % self.offsets.len() } else { 0 };

        let mut cur = self.offsets[slot].load(Ordering::Relaxed);
        if !self.starts.check(cur) {
            cur = 0;
        }
        let mut traversed = 0u64;
        let mut strikes = 0u32;
        // Contention tally of this one walk: every chunk header inspected is
        // a list hop; validation resets and lost claims are CAS losses.
        let mut hops = 0u64;
        let mut lost = 0u64;
        loop {
            if traversed >= 2 * self.region_len {
                self.flush_walk(ctx.sm, hops, lost);
                self.metrics.tick(ctx.sm, Counter::MallocFailures);
                return Err(AllocError::OutOfMemory(size));
            }
            hops += 1;
            let hdr = H::read(&self.heap, cur);
            // Validate the link before trusting anything else in the header:
            // a merge may have recycled `cur` under us.
            if !(hdr.next == 0 || self.starts.check(hdr.next)) || hdr.next == cur {
                strikes += 1;
                lost += 1;
                if strikes > MAX_STRIKES {
                    self.flush_walk(ctx.sm, hops, lost);
                    self.metrics.tick(ctx.sm, Counter::MallocFailures);
                    return Err(AllocError::Contention("Reg-Eff list walk"));
                }
                cur = 0;
                continue;
            }
            let extent = self.extent(cur, hdr.next);
            if !hdr.allocated && extent >= need {
                if H::try_claim(&self.heap, cur) {
                    // Post-claim validation: `cur` must still be a live chunk
                    // (the claim could have landed on recycled payload bytes).
                    if !self.starts.check(cur) {
                        H::release(&self.heap, cur);
                        strikes += 1;
                        lost += 1;
                        if strikes > MAX_STRIKES {
                            self.flush_walk(ctx.sm, hops, lost);
                            self.metrics.tick(ctx.sm, Counter::MallocFailures);
                            return Err(AllocError::Contention("Reg-Eff claim validation"));
                        }
                        cur = 0;
                        continue;
                    }
                    // Re-read under ownership: the chunk may have shrunk
                    // since the optimistic read.
                    let owned = H::read(&self.heap, cur);
                    let extent = self.extent(cur, owned.next);
                    if extent < need {
                        H::release(&self.heap, cur);
                        traversed += extent;
                        cur = if owned.next == 0 { 0 } else { owned.next };
                        continue;
                    }
                    // Split when the leftover is worth keeping.
                    if extent - need >= SPLIT_MIN {
                        let leftover = cur + need;
                        H::write(
                            &self.heap,
                            leftover,
                            ChunkHeader { allocated: false, next: owned.next },
                        );
                        self.starts.set(leftover);
                        H::set_next(&self.heap, cur, leftover);
                        self.offsets[slot].store(leftover, Ordering::Relaxed);
                    } else {
                        self.offsets[slot]
                            .store(if owned.next == 0 { 0 } else { owned.next }, Ordering::Relaxed);
                    }
                    self.flush_walk(ctx.sm, hops, lost);
                    return Ok(DevicePtr::new(cur + H::SIZE));
                }
                // A free-looking chunk another thread claimed first.
                lost += 1;
            }
            traversed += extent;
            cur = if hdr.next == 0 { 0 } else { hdr.next };
        }
    }

    fn free(&self, ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
        self.metrics.tick(ctx.sm, Counter::FreeCalls);
        let fail = |e: AllocError| {
            self.metrics.tick(ctx.sm, Counter::FreeFailures);
            Err(e)
        };
        if ptr.is_null() || ptr.offset() < H::SIZE {
            return fail(AllocError::InvalidPointer);
        }
        let chunk = ptr.offset() - H::SIZE;
        if !self.starts.check(chunk) {
            return fail(AllocError::InvalidPointer);
        }
        let hdr = H::read(&self.heap, chunk);
        if !hdr.allocated {
            return fail(AllocError::InvalidPointer);
        }
        // Try to merge with the physically-next chunk: lock it so no other
        // thread can use it (paper: "This entails trying to allocate the
        // next chunk such that it cannot be used by another thread").
        let next = hdr.next;
        if next > chunk && self.starts.check(next) && H::try_claim(&self.heap, next) {
            if self.starts.check(next) {
                let absorbed = H::read(&self.heap, next);
                self.starts.clear(next);
                H::set_next(&self.heap, chunk, absorbed.next);
            } else {
                // The claim landed on bytes a concurrent merge recycled —
                // undo it.
                H::release(&self.heap, next);
            }
        }
        H::release(&self.heap, chunk);
        Ok(())
    }

    fn register_footprint(&self) -> RegisterFootprint {
        RegisterFootprint::from_frames(
            std::mem::size_of::<MallocFrame>(),
            std::mem::size_of::<FreeFrame>(),
        )
    }

    fn metrics(&self) -> Metrics {
        self.metrics.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_core::traits::DeviceAllocatorExt;

    const HEAP: u64 = 1 << 20; // 1 MiB

    fn ctx() -> ThreadCtx {
        ThreadCtx::host()
    }

    fn each_variant(f: impl Fn(&dyn DeviceAllocator, &str)) {
        f(&RegEffC::with_capacity(HEAP, 80), "C");
        f(&RegEffCF::with_capacity(HEAP, 80), "CF");
        f(&RegEffCM::with_capacity(HEAP, 80), "CM");
        f(&RegEffCFM::with_capacity(HEAP, 80), "CFM");
    }

    #[test]
    fn presplit_produces_halving_chunks() {
        let a = RegEffC::with_capacity(HEAP, 80);
        // 1 MiB: 512K, 256K, 128K, 64K, 32K, 16K, 8K, 4K, 4K(remainder)
        assert_eq!(a.chunk_count(), 9);
    }

    #[test]
    fn multi_presplits_per_sm() {
        let a = RegEffCM::with_capacity(HEAP, 8);
        // 8 sub-heaps of 128 KiB: 64K,32K,16K,8K,4K,4K = 6 chunks each.
        assert_eq!(a.chunk_count(), 48);
        assert_eq!(a.offsets.len(), 8);
    }

    #[test]
    fn variant_labels() {
        each_variant(|a, v| {
            assert_eq!(a.info().family, "Reg-Eff");
            assert_eq!(a.info().variant, v);
        });
    }

    #[test]
    fn alignment_is_header_sized_not_16() {
        // The paper's §5 point: Reg-Eff memory is not 16-byte aligned.
        assert_eq!(RegEffC::with_capacity(HEAP, 80).info().alignment, 8);
        assert_eq!(RegEffCF::with_capacity(HEAP, 80).info().alignment, 4);
    }

    #[test]
    fn malloc_free_roundtrip_all_variants() {
        each_variant(|a, v| {
            let p = a.checked_malloc(&ctx(), 100).unwrap_or_else(|e| panic!("{v}: {e}"));
            a.heap().fill(p, 100, 0xcd);
            a.free(&ctx(), p).unwrap_or_else(|e| panic!("{v}: {e}"));
        });
    }

    #[test]
    fn split_keeps_leftover_allocatable() {
        let a = RegEffC::with_capacity(HEAP, 80);
        let p1 = a.malloc(&ctx(), 64).unwrap();
        let p2 = a.malloc(&ctx(), 64).unwrap();
        // Second allocation lands right after the first's split remainder.
        assert_ne!(p1, p2);
        assert!(p2.offset() > p1.offset());
        assert_eq!(p2.offset() - p1.offset(), gpumem_core::util::align_up(64 + 8, 8));
    }

    #[test]
    fn free_merges_with_next_chunk() {
        let a = RegEffC::with_capacity(HEAP, 80);
        let before = a.chunk_count();
        let p1 = a.malloc(&ctx(), 64).unwrap();
        let p2 = a.malloc(&ctx(), 64).unwrap();
        assert_eq!(a.chunk_count(), before + 2);
        // Free in reverse order: p2 merges with the free tail, then p1
        // merges with the merged block.
        a.free(&ctx(), p2).unwrap();
        assert_eq!(a.chunk_count(), before + 1);
        a.free(&ctx(), p1).unwrap();
        assert_eq!(a.chunk_count(), before);
    }

    #[test]
    fn double_free_detected() {
        let a = RegEffCF::with_capacity(HEAP, 80);
        let p = a.malloc(&ctx(), 32).unwrap();
        a.free(&ctx(), p).unwrap();
        assert_eq!(a.free(&ctx(), p), Err(AllocError::InvalidPointer));
    }

    #[test]
    fn bogus_pointer_rejected() {
        let a = RegEffC::with_capacity(HEAP, 80);
        assert_eq!(a.free(&ctx(), DevicePtr::new(12345)), Err(AllocError::InvalidPointer));
        assert_eq!(a.free(&ctx(), DevicePtr::NULL), Err(AllocError::InvalidPointer));
    }

    #[test]
    fn oversize_rejected() {
        let a = RegEffC::with_capacity(HEAP, 80);
        assert!(matches!(a.malloc(&ctx(), HEAP * 2), Err(AllocError::UnsupportedSize(_))));
    }

    #[test]
    fn exhaustion_reports_oom_and_recovers() {
        let a = RegEffCF::with_capacity(1 << 16, 80);
        let mut ptrs = Vec::new();
        loop {
            match a.malloc(&ctx(), 1024) {
                Ok(p) => ptrs.push(p),
                Err(AllocError::OutOfMemory(_)) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(ptrs.len() >= 50, "should fit ~60 KiB of 1 KiB blocks: {}", ptrs.len());
        for p in ptrs.drain(..) {
            a.free(&ctx(), p).unwrap();
        }
        assert!(a.malloc(&ctx(), 1024).is_ok(), "memory must be reusable after frees");
    }

    #[test]
    fn allocations_do_not_overlap() {
        let a = RegEffC::with_capacity(HEAP, 80);
        let mut spans = Vec::new();
        for i in 0..200u64 {
            let size = 16 + (i % 64) * 8;
            let p = a.malloc(&ctx(), size).unwrap();
            spans.push((p.offset(), size));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn multi_variant_scatters_by_sm() {
        let a = RegEffCM::with_capacity(HEAP, 8);
        let mut ptrs = Vec::new();
        for sm in 0..8u32 {
            let c = ThreadCtx { thread_id: sm, lane: 0, warp: 0, block: sm, sm };
            ptrs.push(a.malloc(&c, 64).unwrap().offset());
        }
        // Each SM starts in its own sub-heap → 8 distinct 128 KiB regions.
        let mut regions: Vec<u64> = ptrs.iter().map(|p| p / (HEAP / 8)).collect();
        regions.sort_unstable();
        regions.dedup();
        assert_eq!(regions.len(), 8, "SMs should allocate from distinct sub-heaps");
    }

    #[test]
    fn concurrent_stress_no_overlap() {
        let a = Arc::new(RegEffCFM::with_capacity(1 << 22, 8));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                let mut live: Vec<(u64, u64)> = Vec::new();
                let mut out = Vec::new();
                for i in 0..2000u32 {
                    let c = ThreadCtx::from_linear(t * 2000 + i, 256, 8);
                    let size = 16 + ((t as u64 * 7 + i as u64) % 96) * 8;
                    match a.malloc(&c, size) {
                        Ok(p) => {
                            a.heap().fill(p, size, 0xee);
                            live.push((p.offset(), size));
                        }
                        Err(AllocError::OutOfMemory(_)) | Err(AllocError::Contention(_)) => {}
                        Err(e) => panic!("{e}"),
                    }
                    if i % 3 == 0 {
                        if let Some((off, _)) = live.pop() {
                            a.free(&c, DevicePtr::new(off)).unwrap();
                        }
                    }
                }
                out.extend(live);
                out
            }));
        }
        let mut all: Vec<(u64, u64)> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        for w in all.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "concurrent overlap: {:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn register_footprint_is_smallest_in_survey() {
        let a = RegEffC::with_capacity(HEAP, 80);
        let fp = a.register_footprint();
        assert!(fp.malloc <= 16, "Reg-Eff must be register-frugal: {fp}");
        assert!(fp.free <= 12, "{fp}");
    }

    #[test]
    fn near_max_request_fails_instead_of_wrapping() {
        // Regression (memlint unchecked-offset-arithmetic): the header
        // inflation `align_up(size + H::SIZE, 8)` used to wrap for
        // near-u64::MAX requests and pass the region-length guard.
        each_variant(|a, tag| {
            for size in [u64::MAX, u64::MAX - 8, u64::MAX - 16] {
                assert!(
                    matches!(a.malloc(&ctx(), size), Err(AllocError::UnsupportedSize(_))),
                    "{tag}: size {size:#x} must be rejected, not wrapped"
                );
            }
        });
    }
}
