//! # alloc-fdg — FDGMalloc (Widmer et al., 2013)
//!
//! Paper §2.4: "FDGMalloc introduces a memory allocator with a focus on
//! explicit warp-level programming. […] They do not offer a general free
//! mechanic and only allow allocations at warp-level, reducing its
//! applicability as a general-purpose memory manager."
//!
//! The reproduced design (Figure 3):
//!
//! * Every warp owns a **WarpHeader** — allocated from the CUDA-Allocator —
//!   pointing at the warp's *foremost SuperBlock* and at a chain of
//!   **SuperBlock_Lists**. Lists are fixed size and replaced once full;
//!   each list tracks in `SB_Counter` how many SuperBlocks it holds.
//! * Lane requests are combined by a **leader thread** (voting) and served
//!   by bumping the current SuperBlock; when it cannot satisfy the
//!   remainder, the leader allocates a fresh SuperBlock from the
//!   CUDA-Allocator and registers it in the list.
//! * Requests **larger than the maximum SuperBlock size are forwarded to
//!   the CUDA-Allocator** (and still tracked, so tidy-up can release them).
//! * Deallocation is **collective only**: `tidyUp` (here
//!   [`DeviceAllocator::free_warp_all`]) walks the lists and releases every
//!   SuperBlock, every forwarded allocation, every list block and the
//!   WarpHeader itself. There is no way to free a single allocation —
//!   [`DeviceAllocator::free`] reports `Unsupported`, as the original
//!   would.
//!
//! The survey includes FDGMalloc in its framework but omits it from the
//! final evaluation because it "crashes in most test scenarios" (§3). The
//! port is stable; EXPERIMENTS.md notes the difference where relevant.

// Also enforced workspace-wide; restated here so the audit
// guarantee survives if this crate is ever built out of tree.
#![deny(unsafe_op_in_unsafe_fn)]

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use alloc_cuda::CudaAllocModel;
use gpumem_core::util::align_up;
use gpumem_core::{
    AllocError, Counter, DeviceAllocator, DeviceHeap, DevicePtr, ManagerInfo, Metrics,
    RegisterFootprint, ThreadCtx, WarpCtx,
};

/// SuperBlock payload size — the largest request served without forwarding.
pub const SUPERBLOCK_BYTES: u64 = 8192;
/// SuperBlock pointers per SuperBlock_List record.
pub const LIST_CAPACITY: usize = 32;
/// In-heap bytes of one list record: 16-byte header + pointer slots.
pub const LIST_RECORD_BYTES: u64 = 16 + (LIST_CAPACITY as u64) * 8;
/// In-heap bytes of a WarpHeader.
pub const WARP_HEADER_BYTES: u64 = 32;
/// Shards of the warp-state table.
const SHARDS: usize = 64;

/// Tag bit marking a list entry as a forwarded (CUDA-Allocator) allocation
/// rather than a SuperBlock.
const FORWARDED_BIT: u64 = 1 << 63;

/// Host-side view of one warp's allocation state. Only the warp that owns
/// it ever touches it (warps execute as a unit), so it lives behind the
/// shard lock without contention.
struct WarpState {
    /// In-heap WarpHeader allocation (kept so tidy-up releases it).
    header: DevicePtr,
    /// Current bump position within the foremost SuperBlock.
    cursor: u64,
    /// End of the foremost SuperBlock (0 = none yet).
    sb_end: u64,
    /// Foremost SuperBlock payload offset.
    current_sb: DevicePtr,
    /// In-heap list records, newest last; entries are written into the heap.
    lists: Vec<DevicePtr>,
    /// Entries used in the newest list record.
    newest_len: usize,
}

/// Locals live in `malloc` (register proxy).
#[repr(C)]
struct MallocFrame {
    size: u64,
    rounded: u64,
    cursor: u64,
    sb_end: u64,
    leader_mask: u32,
    list_len: u32,
    header: u64,
    result: u64,
}

/// The FDGMalloc memory manager.
pub struct FdgMalloc {
    heap: Arc<DeviceHeap>,
    cuda: CudaAllocModel,
    shards: Vec<Mutex<HashMap<u32, WarpState>>>,
    metrics: Metrics,
}

impl FdgMalloc {
    /// Creates FDGMalloc over all of `heap` (the embedded CUDA-Allocator
    /// model manages the same region, as in the original).
    pub fn new(heap: Arc<DeviceHeap>) -> Self {
        let cuda = CudaAllocModel::new(Arc::clone(&heap));
        FdgMalloc {
            heap,
            cuda,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            metrics: Metrics::disabled(),
        }
    }

    /// Attaches a contention-observability handle. The embedded
    /// CUDA-Allocator shares the counters through [`Metrics::relay`], so
    /// SuperBlock pulls and forwarded requests contribute structural
    /// counters without double-counting `malloc_calls`/`free_calls`.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.cuda.set_metrics(metrics.relay());
        self.metrics = metrics;
        self
    }

    /// Locks the warp's shard, counting a `queue_spins` event when the
    /// fast-path `try_lock` loses to another warp hashed onto the shard.
    fn lock_shard(&self, sm: u32, warp: u32) -> std::sync::MutexGuard<'_, HashMap<u32, WarpState>> {
        match self.shard(warp).try_lock() {
            Ok(g) => g,
            Err(_) => {
                self.metrics.tick(sm, Counter::QueueSpins);
                // memlint: allow(hot-path-panic) — the shard Mutex models FDGMalloc's per-warp serialisation; it only poisons after a prior panic, which the harness treats as fatal
                self.shard(warp).lock().unwrap()
            }
        }
    }

    /// Convenience constructor owning its heap.
    pub fn with_capacity(len: u64) -> Self {
        Self::new(Arc::new(DeviceHeap::new(len)))
    }

    fn shard(&self, warp: u32) -> &Mutex<HashMap<u32, WarpState>> {
        &self.shards[(warp as usize) % SHARDS]
    }

    /// Ensures the warp has a header, creating it on first contact
    /// ("The warp header is allocated from the CUDA-Allocator").
    fn init_state(&self, ctx: &ThreadCtx) -> Result<WarpState, AllocError> {
        let header = self.cuda.malloc(ctx, WARP_HEADER_BYTES)?;
        Ok(WarpState {
            header,
            cursor: 0,
            sb_end: 0,
            current_sb: DevicePtr::NULL,
            // memlint: allow(hot-path-host-alloc) — one-time lazy creation of a warp's state on its first malloc — models the device-side warp header setup, amortised over the warp's lifetime
            lists: Vec::new(),
            newest_len: 0,
        })
    }

    /// Registers an allocation (SuperBlock or forwarded) in the warp's
    /// in-heap list chain.
    fn register(&self, ctx: &ThreadCtx, st: &mut WarpState, entry: u64) -> Result<(), AllocError> {
        if st.lists.is_empty() || st.newest_len == LIST_CAPACITY {
            // "These lists are of fixed size and are replaced once full."
            let list = self.cuda.malloc(ctx, LIST_RECORD_BYTES)?;
            self.heap.store_u32(list.offset(), 0x4644_4701); // list magic
                                                             // memlint: allow(unchecked-offset-arithmetic) — the +4 SB_Counter slot lies inside the LIST_RECORD_BYTES record allocated two lines up
            self.heap.store_u32(list.offset() + 4, 0); // SB_Counter
                                                       // memlint: allow(hot-path-host-alloc) — st.lists models FDGMalloc's chain of fixed-size lists; a push happens once per LIST_CAPACITY allocations, the in-heap record is the actual data structure
            st.lists.push(list);
            st.newest_len = 0;
        }
        // memlint: allow(hot-path-panic) — the branch above pushes a fresh list whenever the chain is empty or full, so last() is guaranteed Some
        let list = *st.lists.last().expect("just ensured");
        // memlint: allow(unchecked-offset-arithmetic) — slot arithmetic stays inside the list record: newest_len < LIST_CAPACITY is re-established above, and 16 + LIST_CAPACITY*8 == LIST_RECORD_BYTES
        let slot = list.offset() + 16 + st.newest_len as u64 * 8;
        self.heap.store_u64(slot, entry);
        st.newest_len += 1;
        // memlint: allow(unchecked-offset-arithmetic) — the +4 SB_Counter slot lies inside the LIST_RECORD_BYTES record the entry was just written to
        self.heap.store_u32(list.offset() + 4, st.newest_len as u32);
        Ok(())
    }

    /// Serves one rounded request from the warp's SuperBlock, pulling a new
    /// SuperBlock from the CUDA-Allocator when the current one is spent.
    fn bump(
        &self,
        ctx: &ThreadCtx,
        st: &mut WarpState,
        rounded: u64,
    ) -> Result<DevicePtr, AllocError> {
        if st.cursor + rounded > st.sb_end {
            let sb = self.cuda.malloc(ctx, SUPERBLOCK_BYTES)?;
            self.register(ctx, st, sb.offset())?;
            st.current_sb = sb;
            st.cursor = sb.offset();
            // memlint: allow(unchecked-offset-arithmetic) — sb was allocated with exactly SUPERBLOCK_BYTES, so offset + SUPERBLOCK_BYTES is the in-heap end of that superblock
            st.sb_end = sb.offset() + SUPERBLOCK_BYTES;
        }
        let ptr = DevicePtr::new(st.cursor);
        st.cursor += rounded;
        Ok(ptr)
    }

    /// Number of warps with live state (diagnostics).
    pub fn live_warps(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }
}

impl FdgMalloc {
    fn malloc_inner(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        if size == 0 {
            return Err(AllocError::UnsupportedSize(0));
        }
        let rounded = align_up(size, 16);
        let mut shard = self.lock_shard(ctx.sm, ctx.warp);
        if let std::collections::hash_map::Entry::Vacant(e) = shard.entry(ctx.warp) {
            let st = self.init_state(ctx)?;
            // memlint: allow(hot-path-host-alloc) — lazy per-warp state map entry, created once per warp on first use — the device analogue is the warp's one-time header setup
            e.insert(st);
        }
        // memlint: allow(hot-path-panic) — the Vacant branch directly above inserts the entry, so the lookup is guaranteed to hit
        let st = shard.get_mut(&ctx.warp).expect("just inserted");
        if rounded > SUPERBLOCK_BYTES {
            // "If the total requested size per warp is larger than the
            // maximum SuperBlock size, then the request is forwarded to the
            // CUDA-Allocator."
            self.metrics.tick(ctx.sm, Counter::OomFallbacks);
            let ptr = self.cuda.malloc(ctx, rounded)?;
            self.register(ctx, st, ptr.offset() | FORWARDED_BIT)?;
            return Ok(ptr);
        }
        self.bump(ctx, st, rounded)
    }
}

impl DeviceAllocator for FdgMalloc {
    fn info(&self) -> ManagerInfo {
        ManagerInfo::builder("FDGMalloc")
            .supports_free(false)
            .warp_level_only(true)
            .max_native_size(SUPERBLOCK_BYTES)
            .relays_large_to_cuda(true)
            .instrumented(true)
            .build()
    }

    fn heap(&self) -> &DeviceHeap {
        &self.heap
    }

    fn malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        self.metrics.tick(ctx.sm, Counter::MallocCalls);
        let r = self.malloc_inner(ctx, size);
        if r.is_err() {
            self.metrics.tick(ctx.sm, Counter::MallocFailures);
        }
        r
    }

    fn free(&self, ctx: &ThreadCtx, _ptr: DevicePtr) -> Result<(), AllocError> {
        self.metrics.tick(ctx.sm, Counter::FreeCalls);
        self.metrics.tick(ctx.sm, Counter::FreeFailures);
        Err(AllocError::Unsupported(
            "FDGMalloc has no per-allocation free; use free_warp_all (tidyUp)",
        ))
    }

    /// The leader serves all lane requests back-to-back — FDGMalloc's
    /// "voting is used to determine a leader thread, which does all the
    /// work to reduce the number of simultaneous memory requests".
    fn malloc_warp(
        &self,
        warp: &WarpCtx,
        sizes: &[u64],
        out: &mut [DevicePtr],
    ) -> Result<(), AllocError> {
        let leader = warp.leader();
        for lane in 0..sizes.len() {
            match self.malloc(&leader, sizes[lane]) {
                Ok(ptr) => out[lane] = ptr,
                Err(e) => {
                    // The lanes already granted stay in this warp's
                    // SuperBlock list and are reclaimed by the next
                    // `free_warp_all` (tidyUp) — but the caller must not
                    // see a half-filled result.
                    for slot in out.iter_mut() {
                        *slot = DevicePtr::NULL;
                    }
                    return Err(e);
                }
            }
        }
        // All lanes were combined into back-to-back leader requests.
        self.metrics.add(warp.sm, Counter::WarpCoalesced, sizes.len() as u64);
        Ok(())
    }

    /// `tidyUp`: releases every SuperBlock, forwarded allocation, list
    /// record and the WarpHeader of this warp.
    fn free_warp_all(&self, warp: &WarpCtx) -> Result<(), AllocError> {
        let mut shard = self.lock_shard(warp.sm, warp.warp);
        let st = shard.remove(&warp.warp).ok_or(AllocError::InvalidPointer)?;
        let ctx = warp.leader();
        let mut hops = 0u64;
        for (li, list) in st.lists.iter().enumerate() {
            let entries = if li + 1 == st.lists.len() { st.newest_len } else { LIST_CAPACITY };
            hops += 1;
            for e in 0..entries {
                hops += 1;
                // memlint: allow(unchecked-offset-arithmetic) — free-walk read-back of list slots: e < entries <= LIST_CAPACITY and 16 + LIST_CAPACITY*8 == LIST_RECORD_BYTES keeps the slot inside the record
                let raw = self.heap.load_u64(list.offset() + 16 + e as u64 * 8);
                let ptr = DevicePtr::new(raw & !FORWARDED_BIT);
                self.cuda.free(&ctx, ptr)?;
            }
            self.cuda.free(&ctx, *list)?;
        }
        self.cuda.free(&ctx, st.header)?;
        // tidyUp walks the whole SuperBlock_List chain.
        self.metrics.add(warp.sm, Counter::ListHops, hops);
        Ok(())
    }

    fn register_footprint(&self) -> RegisterFootprint {
        RegisterFootprint::from_frames(std::mem::size_of::<MallocFrame>(), 0)
    }

    fn metrics(&self) -> Metrics {
        self.metrics.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEAP: u64 = 4 << 20;

    fn alloc() -> FdgMalloc {
        FdgMalloc::with_capacity(HEAP)
    }

    fn warp0() -> WarpCtx {
        WarpCtx { warp: 0, block: 0, sm: 0 }
    }

    #[test]
    fn warp_allocations_bump_within_superblock() {
        let a = alloc();
        let c = ThreadCtx::host();
        let p1 = a.malloc(&c, 64).unwrap();
        let p2 = a.malloc(&c, 64).unwrap();
        assert_eq!(p2.offset() - p1.offset(), 64, "bump allocation is contiguous");
        assert_eq!(a.live_warps(), 1);
    }

    #[test]
    fn individual_free_unsupported() {
        let a = alloc();
        let c = ThreadCtx::host();
        let p = a.malloc(&c, 64).unwrap();
        assert!(matches!(a.free(&c, p), Err(AllocError::Unsupported(_))));
    }

    #[test]
    fn tidy_up_releases_everything() {
        let a = alloc();
        let c = ThreadCtx::host();
        for _ in 0..100 {
            a.malloc(&c, 256).unwrap();
        }
        assert_eq!(a.live_warps(), 1);
        a.free_warp_all(&warp0()).unwrap();
        assert_eq!(a.live_warps(), 0);
        // All memory is back: a big forwarded allocation succeeds.
        let p = a.malloc(&c, 1 << 20).unwrap();
        assert!(!p.is_null());
    }

    #[test]
    fn tidy_up_without_state_is_an_error() {
        let a = alloc();
        assert_eq!(a.free_warp_all(&warp0()), Err(AllocError::InvalidPointer));
    }

    #[test]
    fn oversize_requests_forward_to_cuda_allocator() {
        let a = alloc();
        let c = ThreadCtx::host();
        let p = a.malloc(&c, SUPERBLOCK_BYTES * 4).unwrap();
        a.heap().fill(p, SUPERBLOCK_BYTES * 4, 0x42);
        // Forwarded allocations are still tidy-up-tracked.
        a.free_warp_all(&warp0()).unwrap();
    }

    #[test]
    fn list_overflow_allocates_new_list_record() {
        let a = alloc();
        let c = ThreadCtx::host();
        // Each 8 KiB superblock registers one list entry; exceed 32 entries.
        for _ in 0..(LIST_CAPACITY + 4) {
            a.malloc(&c, SUPERBLOCK_BYTES).unwrap(); // fills one SB each
        }
        let shard = a.shard(0).lock().unwrap();
        let st = shard.get(&0).unwrap();
        assert_eq!(st.lists.len(), 2, "second SuperBlock_List must exist");
        drop(shard);
        a.free_warp_all(&warp0()).unwrap();
    }

    #[test]
    fn warps_are_isolated() {
        let a = alloc();
        let c0 = ThreadCtx::from_linear(0, 256, 80);
        let c1 = ThreadCtx::from_linear(32, 256, 80); // warp 1
        let p0 = a.malloc(&c0, 64).unwrap();
        let p1 = a.malloc(&c1, 64).unwrap();
        assert_eq!(a.live_warps(), 2);
        // Different superblocks entirely.
        assert!(p0.offset().abs_diff(p1.offset()) >= SUPERBLOCK_BYTES);
        a.free_warp_all(&WarpCtx { warp: 1, block: 0, sm: 0 }).unwrap();
        assert_eq!(a.live_warps(), 1);
        // Warp 0's memory is untouched; p0 still valid to write.
        a.heap().fill(p0, 64, 0x1);
    }

    #[test]
    fn malloc_warp_serves_all_lanes_contiguously() {
        let a = alloc();
        let mut out = [DevicePtr::NULL; 32];
        a.malloc_warp(&warp0(), &[48; 32], &mut out).unwrap();
        for pair in out.windows(2) {
            assert_eq!(pair[1].offset() - pair[0].offset(), 48);
        }
    }

    #[test]
    fn allocations_do_not_overlap_across_superblocks() {
        let a = alloc();
        let c = ThreadCtx::host();
        let mut spans = Vec::new();
        for i in 0..500u64 {
            let size = 16 + (i % 100) * 16;
            let p = a.malloc(&c, size).unwrap();
            spans.push((p.offset(), align_up(size, 16)));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap {:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn info_reflects_warp_level_design() {
        let a = alloc();
        let info = a.info();
        assert!(info.warp_level_only);
        assert!(!info.supports_free);
        assert!(info.relays_large_to_cuda);
        assert_eq!(info.max_native_size, SUPERBLOCK_BYTES);
    }
}
