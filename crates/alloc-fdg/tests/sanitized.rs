//! FDGMalloc under the shadow-heap sanitizer.
//!
//! FDG is warp-level-only: threads allocate from their warp's SuperBlocks
//! and nothing is freed individually — `free_warp_all` (the original's
//! `tidyUp`) releases a warp's entire history at once. The sanitizer tracks
//! those allocations per warp and retires them collectively, so a
//! SuperBlock handed to two warps, or a tidyUp that misses a block, would
//! show up as Overlap / leftover live allocations.

use alloc_fdg::FdgMalloc;
use gpumem_core::sanitize::Sanitized;
use gpumem_core::{DeviceAllocator, WarpCtx};

#[test]
fn warp_lifecycle_is_clean() {
    let san = Sanitized::new(FdgMalloc::with_capacity(32 << 20));
    assert!(san.info().warp_level_only);
    for round in 0..3u32 {
        for warp in 0..4u32 {
            let w = WarpCtx { warp, block: 0, sm: warp % 2 };
            for lane in 0..32u32 {
                let ctx = w.lane(lane);
                let p = san.malloc(&ctx, 16 + ((round + lane) as u64 % 8) * 24).unwrap();
                san.heap().fill(p, 16, lane as u8);
            }
            san.free_warp_all(&w).unwrap();
        }
    }
    let report = san.take_report();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.live, 0, "tidyUp must retire every tracked allocation");
}

#[test]
fn interleaved_warps_do_not_alias() {
    let san = Sanitized::new(FdgMalloc::with_capacity(32 << 20));
    let w0 = WarpCtx { warp: 10, block: 1, sm: 0 };
    let w1 = WarpCtx { warp: 11, block: 1, sm: 1 };
    // Two warps allocate turn by turn from the same manager before either
    // tidies up: their SuperBlock carves must stay disjoint.
    for i in 0..48u64 {
        let _ = san.malloc(&w0.lane((i % 32) as u32), 64 + (i % 4) * 32).unwrap();
        let _ = san.malloc(&w1.lane((i % 32) as u32), 48 + (i % 3) * 48).unwrap();
    }
    san.free_warp_all(&w0).unwrap();
    let mid = san.report();
    assert!(mid.is_clean(), "{mid}");
    assert!(mid.live > 0, "warp 11 still holds its allocations");
    san.free_warp_all(&w1).unwrap();
    let report = san.take_report();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.live, 0);
}

#[test]
fn mmap_backed_heap_run_is_clean() {
    use gpumem_core::{DeviceHeap, HeapBackendKind, HeapSpec};
    use std::sync::Arc;
    if !HeapBackendKind::Mmap.available() {
        return;
    }
    // Same warp lifecycle, lazily-committed MAP_NORESERVE substrate: pages
    // must appear zeroed on first touch exactly like the RAM backend's.
    let heap = Arc::new(DeviceHeap::try_new(HeapSpec::mmap(32 << 20)).unwrap());
    let san = Sanitized::new(FdgMalloc::new(heap));
    for warp in 0..4u32 {
        let w = WarpCtx { warp, block: 0, sm: warp % 2 };
        for lane in 0..32u32 {
            let ctx = w.lane(lane);
            let size = 16 + (lane as u64 % 8) * 24;
            let p = san.malloc(&ctx, size).unwrap();
            san.heap().fill(p, size, lane as u8 | 1);
            assert_eq!(san.heap().read_u8(p, size - 1), lane as u8 | 1);
        }
        san.free_warp_all(&w).unwrap();
    }
    let report = san.take_report();
    assert!(report.is_clean(), "{report}");
}
