//! # gpu-workloads — workload generators and reference baselines
//!
//! The building blocks of the survey's synthetic test cases (§4.2, §4.4.1,
//! §4.4.2):
//!
//! * [`sizes`] — deterministic per-thread request-size streams (uniform
//!   ranges for the mixed-allocation and work-generation test cases).
//! * [`prefix`] — the canonical alternative to dynamic allocation: a
//!   parallel exclusive prefix sum over the per-thread sizes plus a single
//!   bulk allocation (the paper's "Baseline built on a prefix-sum from
//!   Thrust").
//! * [`workgen`] — the work-generation test case: threads produce variable
//!   amounts of output, either through a memory manager or through the
//!   prefix-sum baseline.
//! * [`write_test`] — the memory-access performance test case (Fig. 11e):
//!   allocate, then measure warp write coalescing via the `gpu-sim`
//!   transaction model.
//! * [`churn`] — repeated allocate/free cycles, exposing slowdown over
//!   time (observed for the Multi-Reg-Eff variants and, inverted, the
//!   reuse speed-up of Ouroboros).

pub mod churn;
pub mod prefix;
pub mod sizes;
pub mod workgen;
pub mod write_test;
