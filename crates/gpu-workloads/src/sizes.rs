//! Deterministic per-thread request sizes.
//!
//! "To evaluate this, each thread requests an allocation from a certain
//! range of available sizes. The lower bound is 4 B, while the upper bound
//! ranges between 4 B–8192 B, a value is randomly chosen in this range."
//! (§4.2.2). The same generator drives the work-generation test cases
//! (§4.4.1).

use gpumem_core::util::DeviceRng;

/// The per-thread size for `thread_id` drawn uniformly from `[lo, hi]`,
/// reproducibly (same seed → same workload for every manager under test).
#[inline]
pub fn thread_size(seed: u64, thread_id: u32, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo <= hi && lo > 0);
    let mut rng = DeviceRng::new(seed ^ ((thread_id as u64) << 20));
    rng.range_u64(lo, hi)
}

/// Materialises the whole size vector for host-side baselines.
pub fn size_vector(seed: u64, n: u32, lo: u64, hi: u64) -> Vec<u64> {
    (0..n).map(|t| thread_size(seed, t, lo, hi)).collect()
}

/// The sweep of allocation sizes used by the Fig. 9 performance plots:
/// 4 B–8192 B with power-of-two and 3·2ᵏ intermediate points, plus an
/// optional dense linear sweep (`stride`) matching the paper's x-axis.
pub fn alloc_size_sweep(dense_stride: Option<u64>) -> Vec<u64> {
    match dense_stride {
        Some(stride) => {
            let mut v = vec![4u64];
            let mut s = stride;
            while s <= 8192 {
                v.push(s);
                s += stride;
            }
            v.dedup();
            v
        }
        None => {
            let mut v = vec![4u64, 8];
            let mut p = 16u64;
            while p <= 8192 {
                v.push(p);
                let mid = p / 2 * 3;
                if mid < 8192 {
                    v.push(mid);
                }
                p *= 2;
            }
            v.sort_unstable();
            v.dedup();
            v
        }
    }
}

/// Upper bounds of the mixed-allocation sweep (Fig. 9h): 4-4, 4-8, …,
/// 4-8192.
pub fn mixed_upper_bounds() -> Vec<u64> {
    (2..=13).map(|e| 1u64 << e).chain(std::iter::once(4)).collect::<Vec<_>>().tap_sort()
}

trait TapSort {
    fn tap_sort(self) -> Self;
}

impl TapSort for Vec<u64> {
    fn tap_sort(mut self) -> Self {
        self.sort_unstable();
        self.dedup();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_sizes_are_deterministic_and_in_range() {
        for t in 0..1000 {
            let a = thread_size(42, t, 4, 8192);
            let b = thread_size(42, t, 4, 8192);
            assert_eq!(a, b);
            assert!((4..=8192).contains(&a));
        }
    }

    #[test]
    fn different_threads_get_different_streams() {
        let distinct: std::collections::HashSet<u64> =
            (0..100).map(|t| thread_size(7, t, 4, 1 << 20)).collect();
        assert!(distinct.len() > 95, "sizes should look random across threads");
    }

    #[test]
    fn size_vector_matches_scalar() {
        let v = size_vector(9, 50, 16, 64);
        for (t, &s) in v.iter().enumerate() {
            assert_eq!(s, thread_size(9, t as u32, 16, 64));
        }
    }

    #[test]
    fn sweep_covers_4_to_8192() {
        let v = alloc_size_sweep(None);
        assert_eq!(*v.first().unwrap(), 4);
        assert_eq!(*v.last().unwrap(), 8192);
        assert!(v.contains(&16) && v.contains(&24) && v.contains(&3072));
        assert!(v.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
    }

    #[test]
    fn dense_sweep_has_constant_stride() {
        let v = alloc_size_sweep(Some(64));
        assert_eq!(v[0], 4);
        assert_eq!(v[1], 64);
        assert_eq!(*v.last().unwrap(), 8192);
        assert_eq!(v.len(), 129);
    }

    #[test]
    fn mixed_bounds_match_paper() {
        let v = mixed_upper_bounds();
        assert_eq!(v, vec![4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192]);
    }
}
