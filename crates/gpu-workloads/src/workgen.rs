//! The work-generation test case (§4.4.1, Figures 11c/11d).
//!
//! "This test case emulates a real-world example of a set of threads
//! producing work": each thread draws a size from a range, obtains memory
//! for it, and writes its output. The dynamic-memory variant goes through a
//! manager under test; the baseline performs the canonical prefix-sum +
//! single bulk allocation.

use std::time::Duration;

use gpu_sim::{Device, PerThread};
use gpumem_core::{DeviceAllocator, DevicePtr};

use crate::prefix::scan_allocate;
use crate::sizes::thread_size;

/// Outcome of one work-generation run.
pub struct WorkGenResult {
    /// Wall-clock of the allocate+write kernel (and scan for the baseline).
    pub elapsed: Duration,
    /// Per-thread pointers (for validation / later freeing).
    pub ptrs: Vec<DevicePtr>,
    /// Threads whose allocation failed.
    pub failures: u64,
}

/// Runs work generation through a memory manager: every thread allocates
/// its size and writes its payload.
pub fn run_managed(
    alloc: &dyn DeviceAllocator,
    device: &Device,
    n_threads: u32,
    seed: u64,
    lo: u64,
    hi: u64,
) -> WorkGenResult {
    let out = PerThread::<DevicePtr>::new(n_threads as usize);
    let heap = alloc.heap();
    let elapsed = device.launch(n_threads, |ctx| {
        let size = thread_size(seed, ctx.thread_id, lo, hi);
        match alloc.malloc(ctx, size) {
            Ok(p) => {
                heap.fill(p, size, (ctx.thread_id as u8) | 1);
                out.set(ctx.thread_id as usize, p);
            }
            Err(_) => out.set(ctx.thread_id as usize, DevicePtr::NULL),
        }
    });
    let ptrs = out.into_vec();
    let failures = ptrs.iter().filter(|p| p.is_null()).count() as u64;
    WorkGenResult { elapsed, ptrs, failures }
}

/// Frees everything a managed run produced (the deallocation phase timed
/// separately by the benchmarks).
pub fn free_all(alloc: &dyn DeviceAllocator, device: &Device, ptrs: &[DevicePtr]) -> Duration {
    device.launch(ptrs.len() as u32, |ctx| {
        let p = ptrs[ctx.thread_id as usize];
        if !p.is_null() {
            // Benchmarks tolerate managers without free (Atomic baseline).
            let _ = alloc.free(ctx, p);
        }
    })
}

/// Runs the prefix-sum baseline: host-side scan + one bulk reservation,
/// then a write kernel over the packed layout.
pub fn run_baseline(
    device: &Device,
    heap: &gpumem_core::DeviceHeap,
    n_threads: u32,
    seed: u64,
    lo: u64,
    hi: u64,
) -> WorkGenResult {
    let sizes: Vec<u64> = (0..n_threads).map(|t| thread_size(seed, t, lo, hi)).collect();
    let scan = scan_allocate(&sizes, 0, device.workers());
    assert!(scan.total <= heap.len(), "baseline demand {} exceeds heap {}", scan.total, heap.len());
    let offsets = scan.offsets;
    let write = device.launch(n_threads, |ctx| {
        let size = thread_size(seed, ctx.thread_id, lo, hi);
        heap.fill(offsets[ctx.thread_id as usize], size, (ctx.thread_id as u8) | 1);
    });
    WorkGenResult { elapsed: scan.elapsed + write, ptrs: offsets, failures: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alloc_atomic_for_tests::AtomicAlloc;
    use gpu_sim::DeviceSpec;
    use gpumem_core::DeviceHeap;
    use std::sync::Arc;

    // The workloads crate deliberately depends only on the core; tests use
    // a local bump allocator equivalent to `alloc-atomic`.
    mod alloc_atomic_for_tests {
        use gpumem_core::sync::{AtomicU64, Ordering};
        use gpumem_core::util::align_up;
        use gpumem_core::*;
        use std::sync::Arc;

        pub struct AtomicAlloc {
            heap: Arc<DeviceHeap>,
            top: AtomicU64,
        }

        impl AtomicAlloc {
            pub fn with_capacity(len: u64) -> Self {
                AtomicAlloc { heap: Arc::new(DeviceHeap::new(len)), top: AtomicU64::new(0) }
            }
        }

        impl DeviceAllocator for AtomicAlloc {
            fn info(&self) -> ManagerInfo {
                ManagerInfo::builder("Atomic").supports_free(false).build()
            }
            fn heap(&self) -> &DeviceHeap {
                &self.heap
            }
            fn malloc(&self, _ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
                let sz = align_up(size.max(1), 16);
                let off = self.top.fetch_add(sz, Ordering::Relaxed);
                if off + sz > self.heap.len() {
                    return Err(AllocError::OutOfMemory(size));
                }
                Ok(DevicePtr::new(off))
            }
            fn free(&self, _ctx: &ThreadCtx, _ptr: DevicePtr) -> Result<(), AllocError> {
                Err(AllocError::Unsupported("no free"))
            }
            fn register_footprint(&self) -> RegisterFootprint {
                RegisterFootprint { malloc: 4, free: 0 }
            }
        }
    }

    fn device() -> Device {
        Device::with_workers(DeviceSpec::titan_v(), 4)
    }

    #[test]
    fn managed_run_allocates_for_every_thread() {
        let a = AtomicAlloc::with_capacity(8 << 20);
        let r = run_managed(&a, &device(), 5000, 1, 4, 64);
        assert_eq!(r.failures, 0);
        assert_eq!(r.ptrs.len(), 5000);
        // Payload actually written: spot-check a few threads.
        for t in [0usize, 999, 4999] {
            let v = a.heap().read_u8(r.ptrs[t], 0);
            assert_eq!(v, (t as u8) | 1);
        }
    }

    #[test]
    fn managed_run_reports_failures_on_exhaustion() {
        let a = AtomicAlloc::with_capacity(16 * 1024);
        let r = run_managed(&a, &device(), 10_000, 1, 64, 64);
        assert!(r.failures > 0, "heap too small, failures expected");
    }

    #[test]
    fn baseline_packs_and_writes() {
        let heap = Arc::new(DeviceHeap::new(8 << 20));
        let r = run_baseline(&device(), &heap, 5000, 1, 4, 64);
        assert_eq!(r.failures, 0);
        for t in [0usize, 2500, 4999] {
            assert_eq!(heap.read_u8(r.ptrs[t], 0), (t as u8) | 1);
        }
        // Packed: strictly increasing offsets.
        assert!(r.ptrs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn free_all_tolerates_no_free_managers() {
        let a = AtomicAlloc::with_capacity(1 << 20);
        let r = run_managed(&a, &device(), 100, 2, 16, 16);
        let d = free_all(&a, &device(), &r.ptrs);
        assert!(d.as_nanos() > 0);
    }
}
