//! The prefix-sum baseline — the canonical non-dynamic alternative.
//!
//! "The memory manager performance can then be compared to the canonical
//! approach of using a prefix-sum plus allocation from the host" (§4.4.1).
//! The original uses Thrust's `exclusive_scan`; this module provides a
//! work-equivalent blocked parallel exclusive scan over the worker pool,
//! followed by a single bulk reservation — one allocation for the entire
//! launch, perfectly packed and coalesced.

use std::time::{Duration, Instant};

use gpumem_core::util::align_up;
use gpumem_core::DevicePtr;

/// Result of the baseline: one packed offset per thread plus the total.
pub struct ScanAlloc {
    /// Per-thread pointers into the single bulk allocation.
    pub offsets: Vec<DevicePtr>,
    /// Total bytes reserved.
    pub total: u64,
    /// Time spent scanning + reserving (the baseline's "allocation" time).
    pub elapsed: Duration,
}

/// Alignment applied to each element, matching the managers' 16 B grain so
/// the comparison is fair.
pub const ELEM_ALIGN: u64 = 16;

/// Runs the blocked parallel exclusive scan over `sizes` with `workers`
/// threads and lays every element into a packed arena starting at `base`.
pub fn scan_allocate(sizes: &[u64], base: u64, workers: usize) -> ScanAlloc {
    let start = Instant::now();
    let n = sizes.len();
    if n == 0 {
        return ScanAlloc { offsets: Vec::new(), total: 0, elapsed: start.elapsed() };
    }
    let workers = workers.clamp(1, n);
    let chunk = n.div_ceil(workers);

    // Pass 1: per-block sums (parallel).
    let mut block_sums = vec![0u64; workers];
    std::thread::scope(|scope| {
        for (b, sum_slot) in block_sums.iter_mut().enumerate() {
            let lo = b * chunk;
            let hi = ((b + 1) * chunk).min(n);
            let sizes = &sizes[lo.min(n)..hi];
            scope.spawn(move || {
                *sum_slot = sizes.iter().map(|&s| align_up(s, ELEM_ALIGN)).sum();
            });
        }
    });

    // Scan of block sums (tiny, sequential).
    let mut block_offsets = vec![0u64; workers];
    let mut acc = 0u64;
    for (b, &s) in block_sums.iter().enumerate() {
        block_offsets[b] = acc;
        acc += s;
    }
    let total = acc;

    // Pass 2: per-block exclusive scan (parallel) into the output.
    let mut offsets = vec![DevicePtr::NULL; n];
    std::thread::scope(|scope| {
        for (b, out) in offsets.chunks_mut(chunk).enumerate() {
            let lo = b * chunk;
            let sizes = &sizes[lo..lo + out.len()];
            let mut cursor = base + block_offsets[b];
            scope.spawn(move || {
                for (slot, &s) in out.iter_mut().zip(sizes) {
                    *slot = DevicePtr::new(cursor);
                    cursor += align_up(s, ELEM_ALIGN);
                }
            });
        }
    });

    ScanAlloc { offsets, total, elapsed: start.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let r = scan_allocate(&[], 0, 4);
        assert_eq!(r.total, 0);
        assert!(r.offsets.is_empty());
    }

    #[test]
    fn sequential_matches_parallel() {
        let sizes: Vec<u64> = (1..500u64).map(|i| (i * 37) % 300 + 1).collect();
        let a = scan_allocate(&sizes, 0, 1);
        let b = scan_allocate(&sizes, 0, 4);
        assert_eq!(a.total, b.total);
        assert_eq!(a.offsets, b.offsets);
    }

    #[test]
    fn offsets_are_packed_and_aligned() {
        let sizes = vec![10u64, 20, 30, 40];
        let r = scan_allocate(&sizes, 1024, 2);
        assert_eq!(r.offsets[0].offset(), 1024);
        assert_eq!(r.offsets[1].offset(), 1024 + 16);
        assert_eq!(r.offsets[2].offset(), 1024 + 48);
        assert_eq!(r.offsets[3].offset(), 1024 + 80);
        assert_eq!(r.total, 16 + 32 + 32 + 48);
        for p in &r.offsets {
            assert!(p.is_aligned(ELEM_ALIGN));
        }
    }

    #[test]
    fn elements_never_overlap() {
        let sizes: Vec<u64> = (0..1000u64).map(|i| i % 97 + 1).collect();
        let r = scan_allocate(&sizes, 0, 8);
        let mut spans: Vec<(u64, u64)> =
            r.offsets.iter().zip(&sizes).map(|(p, &s)| (p.offset(), s)).collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0);
        }
        let last = spans.last().unwrap();
        assert!(last.0 + last.1 <= r.total);
    }

    #[test]
    fn more_workers_than_elements() {
        let r = scan_allocate(&[8, 8], 0, 16);
        assert_eq!(r.offsets.len(), 2);
        assert_eq!(r.total, 32);
    }
}
