//! Repeated allocation/deallocation churn.
//!
//! The paper observes (§4.2.1, warp-based discussion) that "the two
//! Multi-Reg-Eff variants also start strong, but have an issue with
//! repeated allocations/deallocations, slowing down significantly over
//! time", and (§5) that the CUDA-Allocator's "performance continuously
//! increases with the amount of allocations". This workload measures
//! exactly that: the same allocate-all/free-all cycle repeated many times,
//! reporting the per-cycle time series so slowdown (or speed-up through
//! reuse, as Ouroboros shows) becomes visible.

use std::time::Duration;

use gpu_sim::{Device, PerThread};
use gpumem_core::{DeviceAllocator, DevicePtr, WARP_SIZE};

/// Per-cycle timings of a churn run.
pub struct ChurnResult {
    /// (alloc, free) wall-clock per cycle, in order.
    pub cycles: Vec<(Duration, Duration)>,
    /// Allocation failures over the whole run.
    pub failures: u64,
}

impl ChurnResult {
    /// Ratio of the mean of the last quarter of cycles to the mean of the
    /// first quarter (allocation time): > 1 = slows down over time.
    pub fn slowdown_factor(&self) -> f64 {
        let n = self.cycles.len();
        if n < 4 {
            return 1.0;
        }
        let quarter = n / 4;
        let mean = |s: &[(Duration, Duration)]| {
            s.iter().map(|(a, _)| a.as_secs_f64()).sum::<f64>() / s.len() as f64
        };
        let first = mean(&self.cycles[..quarter]);
        let last = mean(&self.cycles[n - quarter..]);
        if first == 0.0 {
            1.0
        } else {
            last / first
        }
    }
}

/// Runs `cycles` iterations of (allocate `n_threads`×`size`, free all).
pub fn run(
    alloc: &dyn DeviceAllocator,
    device: &Device,
    n_threads: u32,
    size: u64,
    cycles: u32,
) -> ChurnResult {
    let mut result = ChurnResult { cycles: Vec::with_capacity(cycles as usize), failures: 0 };
    let supports_free = alloc.info().supports_free;
    let warp_only = alloc.info().warp_level_only;
    for _ in 0..cycles {
        let out = PerThread::<DevicePtr>::new(n_threads as usize);
        let t_alloc = device.launch(n_threads, |ctx| match alloc.malloc(ctx, size) {
            Ok(p) => out.set(ctx.thread_id as usize, p),
            Err(_) => out.set(ctx.thread_id as usize, DevicePtr::NULL),
        });
        let ptrs = out.into_vec();
        result.failures += ptrs.iter().filter(|p| p.is_null()).count() as u64;
        let t_free = if warp_only {
            device.launch_warps(n_threads.div_ceil(WARP_SIZE), |w| {
                let _ = alloc.free_warp_all(w);
            })
        } else if supports_free {
            device.launch(n_threads, |ctx| {
                let p = ptrs[ctx.thread_id as usize];
                if !p.is_null() {
                    let _ = alloc.free(ctx, p);
                }
            })
        } else {
            // No free: the run degenerates to repeated bump allocation and
            // will start failing — still a valid measurement of that fact.
            Duration::ZERO
        };
        result.cycles.push((t_alloc, t_free));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use gpumem_core::sync::{AtomicU64, Ordering};
    use gpumem_core::util::align_up;
    use gpumem_core::{AllocError, DeviceHeap, ManagerInfo, RegisterFootprint, ThreadCtx};
    use std::sync::{Arc, Mutex};

    /// Free-list test allocator whose free list is intentionally scanned
    /// linearly, so churn slows down — lets the metric be validated.
    struct SlowingAlloc {
        heap: Arc<DeviceHeap>,
        top: AtomicU64,
        graveyard: Mutex<Vec<u64>>,
        scan_per_alloc: usize,
    }

    impl SlowingAlloc {
        fn new(len: u64, scan_per_alloc: usize) -> Self {
            SlowingAlloc {
                heap: Arc::new(DeviceHeap::new(len)),
                top: AtomicU64::new(0),
                graveyard: Mutex::new(Vec::new()),
                scan_per_alloc,
            }
        }
    }

    impl DeviceAllocator for SlowingAlloc {
        fn info(&self) -> ManagerInfo {
            ManagerInfo::builder("Slowing").build()
        }
        fn heap(&self) -> &DeviceHeap {
            &self.heap
        }
        fn malloc(&self, _ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
            let g = self.graveyard.lock().unwrap();
            // Cost grows with history: scan a bounded window of the
            // graveyard.
            let window = g.len().min(self.scan_per_alloc);
            let _ = std::hint::black_box(g.iter().take(window).sum::<u64>());
            drop(g);
            let sz = align_up(size.max(1), 16);
            let off = self.top.fetch_add(sz, Ordering::Relaxed);
            if off + sz > self.heap.len() {
                // Recycle: pretend compaction, restart from zero.
                self.top.store(sz, Ordering::Relaxed);
                return Ok(DevicePtr::new(0));
            }
            Ok(DevicePtr::new(off))
        }
        fn free(&self, _ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
            self.graveyard.lock().unwrap().push(ptr.offset());
            Ok(())
        }
        fn register_footprint(&self) -> RegisterFootprint {
            RegisterFootprint { malloc: 2, free: 2 }
        }
    }

    fn device() -> Device {
        Device::with_workers(DeviceSpec::titan_v(), 2)
    }

    #[test]
    fn churn_records_every_cycle() {
        let a = SlowingAlloc::new(8 << 20, 0);
        let r = run(&a, &device(), 512, 64, 10);
        assert_eq!(r.cycles.len(), 10);
        assert_eq!(r.failures, 0);
    }

    #[test]
    fn slowdown_factor_detects_growth() {
        let a = SlowingAlloc::new(8 << 20, usize::MAX);
        let r = run(&a, &device(), 1024, 64, 16);
        assert!(
            r.slowdown_factor() > 1.2,
            "graveyard scan must slow later cycles: {}",
            r.slowdown_factor()
        );
    }

    #[test]
    fn slowdown_factor_of_flat_series_is_near_one() {
        let flat = ChurnResult {
            cycles: vec![(Duration::from_micros(100), Duration::from_micros(50)); 16],
            failures: 0,
        };
        assert!((flat.slowdown_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn short_series_defaults_to_one() {
        let r = ChurnResult { cycles: vec![(Duration::ZERO, Duration::ZERO); 2], failures: 0 };
        assert_eq!(r.slowdown_factor(), 1.0);
    }
}
