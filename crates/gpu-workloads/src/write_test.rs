//! The memory-access performance test case (§4.4.2, Figure 11e).
//!
//! "On the GPU, not only allocation speed but also memory access speed is
//! crucial. To evaluate whether a memory allocator considers alignment, we
//! test the uniform and mixed case with 2¹⁷ allocations between
//! 16 B–128 B. Each thread reads and writes to its assigned memory."
//!
//! After allocating through the manager under test, every warp's write
//! sweep is priced with the `gpu-sim` coalescing model and compared against
//! the fully-coalesced packed baseline.

use gpu_sim::access::AccessStats;
use gpu_sim::{Device, PerThread};
use gpumem_core::{DeviceAllocator, DevicePtr, WARP_SIZE};

use crate::sizes::thread_size;

/// Which size pattern the threads request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePattern {
    /// All threads allocate exactly `bytes`.
    Uniform { bytes: u64 },
    /// Sizes drawn from `[lo, hi]` per thread (the paper's mixed case).
    Mixed { lo: u64, hi: u64 },
}

impl WritePattern {
    fn size_for(&self, seed: u64, thread: u32) -> u64 {
        match *self {
            WritePattern::Uniform { bytes } => bytes,
            WritePattern::Mixed { lo, hi } => thread_size(seed, thread, lo, hi),
        }
    }
}

/// Result of the write-performance test.
pub struct WriteTestResult {
    /// Transaction statistics across all warps.
    pub stats: AccessStats,
    /// Allocation failures (excluded from the statistics).
    pub failures: u64,
}

/// Allocates `n_threads` blocks through `alloc` and prices each warp's
/// write sweep against the coalesced baseline.
pub fn run(
    alloc: &dyn DeviceAllocator,
    device: &Device,
    n_threads: u32,
    seed: u64,
    pattern: WritePattern,
) -> WriteTestResult {
    let out = PerThread::<DevicePtr>::new(n_threads as usize);
    device.launch(n_threads, |ctx| {
        let size = pattern.size_for(seed, ctx.thread_id);
        match alloc.malloc(ctx, size) {
            Ok(p) => out.set(ctx.thread_id as usize, p),
            Err(_) => out.set(ctx.thread_id as usize, DevicePtr::NULL),
        }
    });
    let ptrs = out.into_vec();
    let failures = ptrs.iter().filter(|p| p.is_null()).count() as u64;

    let mut stats = AccessStats::default();
    for (w, warp_ptrs) in ptrs.chunks(WARP_SIZE as usize).enumerate() {
        // Price the warp write at the maximum lane size: the sweep is
        // lock-step, inactive lanes drop out once their block is done, which
        // the per-step distinct-segment count already models via NULLs.
        let max_size = warp_ptrs
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_null())
            .map(|(lane, _)| pattern.size_for(seed, (w * WARP_SIZE as usize + lane) as u32))
            .max()
            .unwrap_or(0);
        stats.add_warp(warp_ptrs, max_size);
    }
    WriteTestResult { stats, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use gpumem_core::sync::{AtomicU64, Ordering};
    use gpumem_core::util::align_up;
    use gpumem_core::{AllocError, DeviceHeap, ManagerInfo, RegisterFootprint, ThreadCtx};
    use std::sync::Arc;

    /// Bump allocator with configurable stride padding, to fabricate
    /// poorly-coalesced layouts.
    struct PaddedBump {
        heap: Arc<DeviceHeap>,
        top: AtomicU64,
        pad: u64,
    }

    impl PaddedBump {
        fn new(len: u64, pad: u64) -> Self {
            PaddedBump { heap: Arc::new(DeviceHeap::new(len)), top: AtomicU64::new(0), pad }
        }
    }

    impl DeviceAllocator for PaddedBump {
        fn info(&self) -> ManagerInfo {
            ManagerInfo::builder("PaddedBump").supports_free(false).build()
        }
        fn heap(&self) -> &DeviceHeap {
            &self.heap
        }
        fn malloc(&self, _ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
            let sz = align_up(size, 16) + self.pad;
            let off = self.top.fetch_add(sz, Ordering::Relaxed);
            if off + sz > self.heap.len() {
                return Err(AllocError::OutOfMemory(size));
            }
            Ok(DevicePtr::new(off))
        }
        fn free(&self, _: &ThreadCtx, _: DevicePtr) -> Result<(), AllocError> {
            Err(AllocError::Unsupported("no"))
        }
        fn register_footprint(&self) -> RegisterFootprint {
            RegisterFootprint { malloc: 4, free: 0 }
        }
    }

    fn device() -> Device {
        Device::with_workers(DeviceSpec::titan_v(), 2)
    }

    #[test]
    fn packed_layout_matches_baseline() {
        let a = PaddedBump::new(8 << 20, 0);
        // One worker: with interleaved workers a warp's bump allocations
        // are not perfectly contiguous, which costs a few extra segments.
        let device = Device::with_workers(DeviceSpec::titan_v(), 1);
        let r = run(&a, &device, 4096, 3, WritePattern::Uniform { bytes: 16 });
        assert_eq!(r.failures, 0);
        assert!(
            (r.stats.relative_cost() - 1.0).abs() < 0.05,
            "packed bump should be ~baseline: {}",
            r.stats.relative_cost()
        );
    }

    #[test]
    fn padded_layout_costs_more() {
        let packed = run(
            &PaddedBump::new(16 << 20, 0),
            &device(),
            4096,
            3,
            WritePattern::Uniform { bytes: 16 },
        );
        let padded = run(
            &PaddedBump::new(64 << 20, 112), // 16 B payload at 128 B stride
            &device(),
            4096,
            3,
            WritePattern::Uniform { bytes: 16 },
        );
        assert!(
            padded.stats.relative_cost() > packed.stats.relative_cost() * 2.0,
            "padding must hurt coalescing: {} vs {}",
            padded.stats.relative_cost(),
            packed.stats.relative_cost()
        );
    }

    #[test]
    fn mixed_pattern_is_deterministic() {
        // One worker: with two workers the bump allocations land in
        // scheduling order, so the layout (and transaction count) varies
        // between runs — determinism only holds for a serial device.
        let device = Device::with_workers(DeviceSpec::titan_v(), 1);
        let a = PaddedBump::new(16 << 20, 0);
        let r1 = run(&a, &device, 2048, 5, WritePattern::Mixed { lo: 16, hi: 128 });
        let a2 = PaddedBump::new(16 << 20, 0);
        let r2 = run(&a2, &device, 2048, 5, WritePattern::Mixed { lo: 16, hi: 128 });
        assert_eq!(r1.stats.transactions, r2.stats.transactions);
        assert_eq!(r1.stats.baseline, r2.stats.baseline);
    }

    #[test]
    fn failures_are_counted_not_priced() {
        let a = PaddedBump::new(4096, 0); // tiny: most allocations fail
        let r = run(&a, &device(), 1024, 1, WritePattern::Uniform { bytes: 64 });
        assert!(r.failures > 900);
    }
}
