//! # alloc-atomic — the `Atomic` baseline
//!
//! "We use as a baseline a simple memory manager built on atomics on a shared
//! offset (referred to as *Atomic*), but this is no true memory manager due
//! to the lack of deallocation." (paper §4)
//!
//! One `fetch_add` on a shared bump offset per allocation; `free` is
//! rejected. This is the fastest possible device-side allocation and anchors
//! the top of every performance plot, as well as the theoretical baseline of
//! the fragmentation test case (Fig. 11a): its address range is exactly the
//! aligned demand.

// Also enforced workspace-wide; restated here so the audit
// guarantee survives if this crate is ever built out of tree.
#![deny(unsafe_op_in_unsafe_fn)]

use gpumem_core::sync::{AtomicU64, Ordering};
use std::sync::Arc;

use gpumem_core::{
    AllocError, Counter, DeviceAllocator, DeviceHeap, DevicePtr, ManagerInfo, Metrics,
    RegisterFootprint, ThreadCtx,
};

/// Alignment of returned pointers — 16 B, the framework-wide expectation.
pub const ALIGNMENT: u64 = 16;

/// The shared-offset bump allocator.
pub struct AtomicAlloc {
    heap: Arc<DeviceHeap>,
    offset: AtomicU64,
    metrics: Metrics,
}

/// Locals live in `malloc` (register proxy; see `gpumem_core::regs`).
#[repr(C)]
struct MallocFrame {
    size: u64,
    aligned: u64,
    offset: u64,
    end: u64,
}

impl AtomicAlloc {
    /// Creates a baseline manager over the whole `heap`.
    pub fn new(heap: Arc<DeviceHeap>) -> Self {
        AtomicAlloc { heap, offset: AtomicU64::new(0), metrics: Metrics::disabled() }
    }

    /// Attaches a contention-observability handle (builder style).
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Convenience constructor: makes its own heap of `len` bytes.
    pub fn with_capacity(len: u64) -> Self {
        Self::new(Arc::new(DeviceHeap::new(len)))
    }

    /// Bytes handed out so far (aligned).
    pub fn used(&self) -> u64 {
        self.offset.load(Ordering::Relaxed).min(self.heap.len())
    }
}

impl DeviceAllocator for AtomicAlloc {
    fn info(&self) -> ManagerInfo {
        ManagerInfo::builder("Atomic")
            .supports_free(false)
            .alignment(ALIGNMENT)
            .instrumented(true)
            .build()
    }

    fn heap(&self) -> &DeviceHeap {
        &self.heap
    }

    fn malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        self.metrics.tick(ctx.sm, Counter::MallocCalls);
        if size == 0 {
            self.metrics.tick(ctx.sm, Counter::MallocFailures);
            return Err(AllocError::UnsupportedSize(0));
        }
        // Checked rounding: near-`u64::MAX` requests must not wrap to a
        // small aligned size (release builds wrap silently).
        let Some(aligned) = size.checked_next_multiple_of(ALIGNMENT) else {
            self.metrics.tick(ctx.sm, Counter::MallocFailures);
            return Err(AllocError::UnsupportedSize(size));
        };
        // Reject heap-sized requests before the bump: a `fetch_add` of a
        // near-`u64::MAX` aligned size would wrap the shared offset back
        // towards zero and resurrect an exhausted heap with overlapping
        // allocations.
        if aligned > self.heap.len() {
            self.metrics.tick(ctx.sm, Counter::MallocFailures);
            return Err(AllocError::OutOfMemory(size));
        }
        let offset = self.offset.fetch_add(aligned, Ordering::Relaxed);
        if offset.checked_add(aligned).is_none_or(|end| end > self.heap.len()) {
            // NOTE: like the original baseline, the offset is not rolled
            // back — once exhausted, the manager stays exhausted.
            self.metrics.tick(ctx.sm, Counter::MallocFailures);
            return Err(AllocError::OutOfMemory(size));
        }
        // The baseline has no retry loop at all — record the perfect op so
        // its histogram anchors the bottom of every contention plot.
        self.metrics.record_retries(ctx.sm, 0);
        Ok(DevicePtr::new(offset))
    }

    fn free(&self, ctx: &ThreadCtx, _ptr: DevicePtr) -> Result<(), AllocError> {
        self.metrics.tick(ctx.sm, Counter::FreeCalls);
        self.metrics.tick(ctx.sm, Counter::FreeFailures);
        Err(AllocError::Unsupported("Atomic baseline has no deallocation"))
    }

    fn register_footprint(&self) -> RegisterFootprint {
        RegisterFootprint::from_frames(std::mem::size_of::<MallocFrame>(), 0)
    }

    fn metrics(&self) -> Metrics {
        self.metrics.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_core::WarpCtx;

    fn alloc() -> AtomicAlloc {
        AtomicAlloc::with_capacity(1 << 16)
    }

    #[test]
    fn sequential_bump() {
        let a = alloc();
        let ctx = ThreadCtx::host();
        let p0 = a.malloc(&ctx, 10).unwrap();
        let p1 = a.malloc(&ctx, 10).unwrap();
        assert_eq!(p0.offset(), 0);
        assert_eq!(p1.offset(), 16); // aligned to 16
        assert_eq!(a.used(), 32);
    }

    #[test]
    fn zero_size_rejected() {
        let a = alloc();
        assert_eq!(a.malloc(&ThreadCtx::host(), 0), Err(AllocError::UnsupportedSize(0)));
    }

    #[test]
    fn free_unsupported() {
        let a = alloc();
        let p = a.malloc(&ThreadCtx::host(), 8).unwrap();
        assert!(matches!(a.free(&ThreadCtx::host(), p), Err(AllocError::Unsupported(_))));
    }

    #[test]
    fn exhaustion_reports_oom() {
        let a = AtomicAlloc::with_capacity(128);
        let ctx = ThreadCtx::host();
        assert!(a.malloc(&ctx, 64).is_ok());
        assert!(a.malloc(&ctx, 64).is_ok());
        assert_eq!(a.malloc(&ctx, 16), Err(AllocError::OutOfMemory(16)));
    }

    #[test]
    fn warp_malloc_default_path() {
        let a = alloc();
        let w = WarpCtx { warp: 0, block: 0, sm: 0 };
        let mut out = [DevicePtr::NULL; 32];
        a.malloc_warp(&w, &[32; 32], &mut out).unwrap();
        for (i, p) in out.iter().enumerate() {
            assert_eq!(p.offset(), i as u64 * 32);
        }
    }

    #[test]
    fn concurrent_allocations_never_overlap() {
        let a = Arc::new(AtomicAlloc::with_capacity(1 << 22));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                let mut ptrs = Vec::new();
                for i in 0..1000u32 {
                    let ctx = ThreadCtx::from_linear(t * 1000 + i, 256, 80);
                    ptrs.push(a.malloc(&ctx, 48).unwrap().offset());
                }
                ptrs
            }));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        for w in all.windows(2) {
            assert!(w[1] - w[0] >= 48, "overlap: {} then {}", w[0], w[1]);
        }
    }

    #[test]
    fn info_flags() {
        let a = alloc();
        let info = a.info();
        assert_eq!(info.label(), "Atomic");
        assert!(!info.supports_free);
        assert_eq!(info.alignment, 16);
    }

    #[test]
    fn register_footprint_is_small() {
        let fp = alloc().register_footprint();
        assert!(fp.malloc <= 10, "baseline should be near-free: {fp}");
        assert_eq!(fp.free, 0);
    }

    #[test]
    fn near_max_request_fails_instead_of_wrapping() {
        // Regression (memlint unchecked-offset-arithmetic): both the align
        // rounding and the `offset + aligned` exhaustion check used to wrap
        // for near-u64::MAX requests.
        let a = alloc();
        let ctx = ThreadCtx::host();
        // `u64::MAX` overflows the aligned rounding; `u64::MAX - 15` is
        // already 16-aligned and would wrap the shared offset back towards
        // zero if it reached the `fetch_add` (resurrecting the heap with
        // overlapping allocations). Both are rejected before the bump, so
        // the allocator stays usable.
        for size in [u64::MAX, u64::MAX - ALIGNMENT + 1, u64::MAX / 2] {
            assert!(a.malloc(&ctx, size).is_err(), "size {size:#x} must be rejected");
        }
        assert!(a.malloc(&ctx, 16).is_ok());
        // A genuine capacity miss still leaves the offset past the end —
        // the baseline deliberately never rolls back.
        assert!(a.malloc(&ctx, 1 << 16).is_err());
        assert!(a.malloc(&ctx, 16).is_err(), "exhaustion is sticky by design");
    }
}

/// Model-checked interleaving suite (built with `RUSTFLAGS="--cfg loom"`).
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use gpumem_core::sync::{model, thread};
    use gpumem_core::ThreadCtx;

    /// Concurrent bumps hand out disjoint, in-heap ranges: the single
    /// `fetch_add` is the entire protocol, so the model asserts the ranges
    /// of three racing allocations never overlap and stay inside the heap.
    #[test]
    fn concurrent_bumps_are_disjoint() {
        model(|| {
            let a = Arc::new(AtomicAlloc::with_capacity(4096));
            let spawn_alloc = |sz: u64, tid: u32| {
                let a = a.clone();
                thread::spawn(move || {
                    let ctx = ThreadCtx::from_linear(tid, 32, 1);
                    a.malloc(&ctx, sz).map(|p| (p.offset(), sz))
                })
            };
            let h1 = spawn_alloc(48, 0);
            let h2 = spawn_alloc(80, 1);
            let r1 = h1.join().unwrap();
            let r2 = h2.join().unwrap();
            let mut spans: Vec<(u64, u64)> = Vec::new();
            for r in [r1, r2] {
                if let Ok((off, sz)) = r {
                    assert_eq!(off % ALIGNMENT, 0, "unaligned bump result");
                    assert!(off + sz <= 4096, "allocation escapes the heap");
                    spans.push((off, off + gpumem_core::util::align_up(sz, ALIGNMENT)));
                }
            }
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlapping allocations: {spans:?}");
            }
        });
    }

    /// OOM stays OOM: once the shared offset passes the heap end, every
    /// racing allocation fails (the paper's Atomic has no rollback, so the
    /// offset only grows — the model checks no schedule resurrects it).
    #[test]
    fn oom_is_sticky_under_races() {
        model(|| {
            let a = Arc::new(AtomicAlloc::with_capacity(128));
            let spawn_alloc = |tid: u32| {
                let a = a.clone();
                thread::spawn(move || {
                    let ctx = ThreadCtx::from_linear(tid, 32, 1);
                    a.malloc(&ctx, 96).is_ok()
                })
            };
            let h1 = spawn_alloc(0);
            let h2 = spawn_alloc(1);
            let ok1 = h1.join().unwrap();
            let ok2 = h2.join().unwrap();
            // 128-byte heap, 96-byte requests: at most one can succeed.
            assert!(!(ok1 && ok2), "two 96B allocations cannot fit in 128B");
        });
    }
}
