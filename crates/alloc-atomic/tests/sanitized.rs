//! The Atomic baseline under the shadow-heap sanitizer.
//!
//! Atomic is "no true memory manager" (paper §4): a bump pointer with no
//! free. Under the sanitizer that means every allocation stays live, and
//! the free path must pass through (counted by the inner manager's error,
//! not as a shadow violation — losing the pointer is this design's
//! documented behaviour, not a bug).

use alloc_atomic::AtomicAlloc;
use gpumem_core::sanitize::Sanitized;
use gpumem_core::{DeviceAllocator, ThreadCtx};

#[test]
fn bump_allocation_is_clean_and_fully_live() {
    let san = Sanitized::new(AtomicAlloc::with_capacity(1 << 22));
    let ctx = ThreadCtx::host();
    let ptrs: Vec<_> = (0..200u64).map(|i| san.malloc(&ctx, 16 + (i % 13) * 48).unwrap()).collect();
    for (i, p) in ptrs.iter().enumerate() {
        san.heap().fill(*p, 16, i as u8);
    }
    let report = san.take_report();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.live, 200, "nothing can be freed, everything stays live");
}

#[test]
fn free_passes_through_without_shadow_violation() {
    let san = Sanitized::new(AtomicAlloc::with_capacity(1 << 20));
    let ctx = ThreadCtx::host();
    let p = san.malloc(&ctx, 64).unwrap();
    assert!(san.free(&ctx, p).is_err(), "the baseline has no free");
    let report = san.report();
    assert!(report.is_clean(), "an unsupported free is not a violation: {report}");
    assert_eq!(report.live, 1);
}

#[test]
fn mmap_backed_heap_run_is_clean() {
    use gpumem_core::{DeviceHeap, HeapBackendKind, HeapSpec, ThreadCtx};
    use std::sync::Arc;
    if !HeapBackendKind::Mmap.available() {
        return;
    }
    // Same manager, lazily-committed MAP_NORESERVE substrate: pages must
    // appear zeroed on first touch exactly like the RAM backend's.
    let heap = Arc::new(DeviceHeap::try_new(HeapSpec::mmap(32 << 20)).unwrap());
    let san = Sanitized::new(AtomicAlloc::new(heap));
    let ctx = ThreadCtx::host();
    let ptrs: Vec<_> = (0..128u64)
        .map(|i| {
            let size = 16 + (i % 16) * 48;
            let p = san.malloc(&ctx, size).unwrap();
            san.heap().fill(p, size, (i % 251) as u8 | 1);
            assert_eq!(san.heap().read_u8(p, size - 1), (i % 251) as u8 | 1);
            p
        })
        .collect();
    drop(ptrs); // the Atomic baseline has no free path
    let report = san.take_report();
    assert!(report.is_clean(), "{report}");
}
