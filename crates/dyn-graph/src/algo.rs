//! Small analytics layer over the device-resident graph — the kind of
//! consumer the paper's motivation names (dynamic graph analytics à la
//! cuSTINGER/aimGraph/faimGraph/Hornet all pair dynamic memory with
//! traversal workloads). Used by the examples and by tests to validate
//! that a graph survives allocation churn semantically, not just
//! byte-wise.

use crate::graph::DynGraph;

/// BFS distances from `source` (`u32::MAX` = unreachable).
pub fn bfs(graph: &DynGraph<'_>, source: u32) -> Vec<u32> {
    let n = graph.vertex_count();
    assert!(source < n, "source out of range");
    let mut dist = vec![u32::MAX; n as usize];
    let mut frontier = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    frontier.push_back(source);
    while let Some(v) = frontier.pop_front() {
        let d = dist[v as usize];
        for u in graph.adjacency(v) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = d + 1;
                frontier.push_back(u);
            }
        }
    }
    dist
}

/// Number of vertices reachable from `source` (including itself).
pub fn reachable(graph: &DynGraph<'_>, source: u32) -> usize {
    bfs(graph, source).iter().filter(|&&d| d != u32::MAX).count()
}

/// Degree histogram: `hist[i]` counts vertices with degree in
/// `[2^i, 2^(i+1))`; `hist[0]` counts degree 0 and 1.
pub fn degree_histogram(graph: &DynGraph<'_>) -> Vec<u64> {
    let mut hist = vec![0u64; 33];
    for v in 0..graph.vertex_count() {
        let d = graph.degree(v);
        let bucket = if d <= 1 { 0 } else { 64 - (d as u64).leading_zeros() as usize - 1 };
        hist[bucket.min(32)] += 1;
    }
    while hist.len() > 1 && *hist.last().expect("non-empty") == 0 {
        hist.pop();
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::CsrGraph;
    use crate::graph::DynGraph;
    use gpu_sim::{Device, DeviceSpec};
    use gpumem_core::sync::{AtomicU64, Ordering};
    use gpumem_core::util::align_up;
    use gpumem_core::{
        AllocError, DeviceAllocator, DeviceHeap, DevicePtr, ManagerInfo, RegisterFootprint,
        ThreadCtx,
    };
    use std::sync::Arc;

    struct Bump {
        heap: Arc<DeviceHeap>,
        top: AtomicU64,
    }

    impl Bump {
        fn new(len: u64) -> Self {
            Bump { heap: Arc::new(DeviceHeap::new(len)), top: AtomicU64::new(0) }
        }
    }

    impl DeviceAllocator for Bump {
        fn info(&self) -> ManagerInfo {
            ManagerInfo::builder("Bump").build()
        }
        fn heap(&self) -> &DeviceHeap {
            &self.heap
        }
        fn malloc(&self, _c: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
            let sz = align_up(size.max(1), 16);
            let off = self.top.fetch_add(sz, Ordering::Relaxed);
            if off + sz > self.heap.len() {
                return Err(AllocError::OutOfMemory(size));
            }
            Ok(DevicePtr::new(off))
        }
        fn free(&self, _c: &ThreadCtx, _p: DevicePtr) -> Result<(), AllocError> {
            Ok(()) // leak-free enough for tests
        }
        fn register_footprint(&self) -> RegisterFootprint {
            RegisterFootprint { malloc: 1, free: 1 }
        }
    }

    /// A path graph 0-1-2-…-(n-1) as CSR.
    fn path_graph(n: u32) -> CsrGraph {
        let mut offsets = vec![0u64];
        let mut targets = Vec::new();
        for v in 0..n {
            if v > 0 {
                targets.push(v - 1);
            }
            if v + 1 < n {
                targets.push(v + 1);
            }
            offsets.push(targets.len() as u64);
        }
        CsrGraph { offsets, targets, name: "path".into() }
    }

    fn device() -> Device {
        Device::with_workers(DeviceSpec::titan_v(), 2)
    }

    #[test]
    fn bfs_distances_on_path() {
        let a = Bump::new(1 << 20);
        let csr = path_graph(50);
        let (g, _) = DynGraph::init(&a, &device(), &csr);
        let dist = bfs(&g, 0);
        for v in 0..50u32 {
            assert_eq!(dist[v as usize], v);
        }
        assert_eq!(reachable(&g, 0), 50);
        let mid = bfs(&g, 25);
        assert_eq!(mid[0], 25);
        assert_eq!(mid[49], 24);
    }

    #[test]
    fn bfs_detects_disconnection_and_new_edges() {
        let a = Bump::new(1 << 20);
        // Two disjoint paths: 0-..-9 and 10-..-19.
        let mut csr = path_graph(10);
        let other = path_graph(10);
        let base = 10u32;
        for v in 0..10u32 {
            let start = other.offsets[v as usize];
            let end = other.offsets[v as usize + 1];
            for &t in &other.targets[start as usize..end as usize] {
                csr.targets.push(t + base);
            }
            csr.offsets.push(csr.targets.len() as u64);
        }
        let (g, _) = DynGraph::init(&a, &device(), &csr);
        assert_eq!(reachable(&g, 0), 10, "component 2 must be unreachable");
        // Bridge the components dynamically.
        g.insert_edge(&ThreadCtx::host(), 9, 10).unwrap();
        assert_eq!(reachable(&g, 0), 20, "inserted edge must connect them");
        assert_eq!(bfs(&g, 0)[10], 10);
    }

    #[test]
    fn histogram_matches_degrees() {
        let a = Bump::new(1 << 20);
        let csr = path_graph(8); // degrees: 1,2,2,2,2,2,2,1
        let (g, _) = DynGraph::init(&a, &device(), &csr);
        let h = degree_histogram(&g);
        assert_eq!(h[0], 2, "two endpoints of degree 1");
        assert_eq!(h[1], 6, "six interior vertices of degree 2");
    }
}
