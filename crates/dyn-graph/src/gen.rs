//! Synthetic stand-ins for the DIMACS10 graphs of Figure 11f/11g.
//!
//! Each generator matches the published vertex count and degree profile of
//! its namesake (scaled by `scale_div`); adjacency *contents* are synthetic.
//! What the graph test cases actually exercise is the distribution of
//! adjacency-array sizes (= allocation sizes) and the insertion churn, both
//! of which are preserved.

use gpumem_core::util::DeviceRng;

/// The five graphs of Figure 11f/11g.
pub const GRAPH_NAMES: [&str; 5] =
    ["rgg_n_2_20_s0", "sc2010", "fe_body", "adaptive", "coAuthorsCiteseer"];

/// A host-side CSR graph (generator output / initialisation input).
#[derive(Clone, Debug)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `targets`.
    pub offsets: Vec<u64>,
    /// Flattened adjacency.
    pub targets: Vec<u32>,
    /// Graph name (for reports).
    pub name: String,
}

impl CsrGraph {
    /// Number of vertices.
    pub fn vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of directed edges.
    pub fn edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbours of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Average degree.
    pub fn avg_degree(&self) -> f64 {
        self.edges() as f64 / self.vertices() as f64
    }
}

/// Published profile of one DIMACS10 graph.
struct Profile {
    vertices: u32,
    kind: DegreeKind,
}

enum DegreeKind {
    /// Uniform in `[lo, hi]` (meshes, geometric graphs).
    Uniform { lo: u64, hi: u64 },
    /// Truncated power law with average ≈ `avg` (co-authorship).
    PowerLaw { avg: f64, max: u64 },
}

fn profile(name: &str) -> Option<Profile> {
    // Vertex counts from the DIMACS10 collection; degree bands chosen to
    // match each graph's published average degree.
    match name {
        // Random geometric graph, 2^20 vertices, avg degree ≈ 13.
        "rgg_n_2_20_s0" => {
            Some(Profile { vertices: 1 << 20, kind: DegreeKind::Uniform { lo: 6, hi: 20 } })
        }
        // South Carolina census blocks, ~585 k vertices, avg degree ≈ 5.
        "sc2010" => Some(Profile { vertices: 585_088, kind: DegreeKind::Uniform { lo: 2, hi: 8 } }),
        // FE mesh, ~45 k vertices, avg degree ≈ 6.
        "fe_body" => Some(Profile { vertices: 45_087, kind: DegreeKind::Uniform { lo: 4, hi: 8 } }),
        // Adaptive FE mesh, ~6.8 M vertices, avg degree ≈ 4.
        "adaptive" => {
            Some(Profile { vertices: 6_815_744, kind: DegreeKind::Uniform { lo: 3, hi: 5 } })
        }
        // Co-authorship network, ~227 k vertices, skewed degrees, avg ≈ 7.
        "coAuthorsCiteseer" => {
            Some(Profile { vertices: 227_320, kind: DegreeKind::PowerLaw { avg: 7.2, max: 512 } })
        }
        _ => None,
    }
}

/// Generates the named graph scaled down by `scale_div` (≥ 1; vertex count
/// divided, degree distribution kept).
///
/// # Panics
/// Panics on an unknown name (see [`GRAPH_NAMES`]).
pub fn generate(name: &str, scale_div: u32, seed: u64) -> CsrGraph {
    let p = profile(name).unwrap_or_else(|| panic!("unknown graph: {name}"));
    let n = (p.vertices / scale_div.max(1)).max(16);
    let mut rng = DeviceRng::new(seed ^ 0xD_1AC5_u64);
    let mut offsets = Vec::with_capacity(n as usize + 1);
    let mut targets = Vec::new();
    offsets.push(0u64);
    for _v in 0..n {
        let deg = match p.kind {
            DegreeKind::Uniform { lo, hi } => rng.range_u64(lo, hi),
            DegreeKind::PowerLaw { avg, max } => {
                // Inverse-transform a truncated Pareto with shape tuned so
                // the mean lands near `avg`.
                let u = rng.next_f64().max(1e-9);
                let d = (avg * 0.45 / u.powf(0.55)) as u64;
                d.clamp(1, max)
            }
        };
        for _ in 0..deg {
            targets.push((rng.next_u64() % n as u64) as u32);
        }
        offsets.push(targets.len() as u64);
    }
    CsrGraph { offsets, targets, name: name.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_named_graphs_generate() {
        for name in GRAPH_NAMES {
            let g = generate(name, 64, 1);
            assert!(g.vertices() >= 16, "{name}");
            assert!(g.edges() > 0, "{name}");
            assert_eq!(g.offsets.len() as u32, g.vertices() + 1);
            assert_eq!(*g.offsets.last().unwrap(), g.edges());
        }
    }

    #[test]
    #[should_panic(expected = "unknown graph")]
    fn unknown_graph_panics() {
        let _ = generate("nope", 1, 1);
    }

    #[test]
    fn degrees_match_published_averages() {
        for (name, lo, hi) in [
            ("rgg_n_2_20_s0", 10.0, 16.0),
            ("sc2010", 3.5, 6.5),
            ("fe_body", 5.0, 7.0),
            ("adaptive", 3.5, 4.5),
            ("coAuthorsCiteseer", 4.0, 11.0),
        ] {
            let g = generate(name, 64, 7);
            let avg = g.avg_degree();
            assert!((lo..=hi).contains(&avg), "{name}: avg degree {avg}");
        }
    }

    #[test]
    fn power_law_graph_is_skewed() {
        let g = generate("coAuthorsCiteseer", 32, 3);
        let max_deg = (0..g.vertices()).map(|v| g.degree(v)).max().unwrap();
        let avg = g.avg_degree();
        assert!(
            max_deg as f64 > avg * 5.0,
            "power law should have heavy tail: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate("fe_body", 8, 42);
        let b = generate("fe_body", 8, 42);
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.targets, b.targets);
        let c = generate("fe_body", 8, 43);
        assert_ne!(a.targets, c.targets);
    }

    #[test]
    fn neighbors_are_in_range() {
        let g = generate("sc2010", 128, 5);
        let n = g.vertices();
        for v in (0..n).step_by(97) {
            for &u in g.neighbors(v) {
                assert!(u < n);
            }
        }
    }

    #[test]
    fn scale_div_shrinks_vertices() {
        let big = generate("fe_body", 4, 1);
        let small = generate("fe_body", 16, 1);
        assert!(big.vertices() > small.vertices() * 3);
    }
}
