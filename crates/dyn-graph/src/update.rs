//! Edge-update batch generators (§4.4.4).
//!
//! "We test two different scenarios, uniform updates as well as updates
//! focused on a range of source vertices, to simulate more update
//! pressure."

use gpumem_core::util::DeviceRng;

/// Uniformly random edge insertions over all vertices.
pub fn uniform_edges(n_vertices: u32, n_edges: u32, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = DeviceRng::new(seed ^ 0xE_D6E5);
    (0..n_edges)
        .map(|_| {
            (
                (rng.next_u64() % n_vertices as u64) as u32,
                (rng.next_u64() % n_vertices as u64) as u32,
            )
        })
        .collect()
}

/// Edge insertions whose sources concentrate on the first
/// `n_vertices / focus_div` vertices (the paper's focused scenario).
pub fn focused_edges(n_vertices: u32, n_edges: u32, focus_div: u32, seed: u64) -> Vec<(u32, u32)> {
    let span = (n_vertices / focus_div.max(1)).max(1);
    let mut rng = DeviceRng::new(seed ^ 0xF_0C05);
    (0..n_edges)
        .map(|_| {
            ((rng.next_u64() % span as u64) as u32, (rng.next_u64() % n_vertices as u64) as u32)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_spans_all_vertices() {
        let edges = uniform_edges(1000, 10_000, 1);
        assert_eq!(edges.len(), 10_000);
        let max_src = edges.iter().map(|&(v, _)| v).max().unwrap();
        assert!(max_src > 900, "uniform sources should reach high ids");
        assert!(edges.iter().all(|&(v, u)| v < 1000 && u < 1000));
    }

    #[test]
    fn focused_sources_stay_in_range() {
        let edges = focused_edges(1000, 10_000, 20, 1);
        assert!(edges.iter().all(|&(v, _)| v < 50), "sources must stay in the focus range");
        let max_dst = edges.iter().map(|&(_, u)| u).max().unwrap();
        assert!(max_dst > 900, "targets remain uniform");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(uniform_edges(100, 50, 9), uniform_edges(100, 50, 9));
        assert_ne!(uniform_edges(100, 50, 9), uniform_edges(100, 50, 10));
    }

    #[test]
    fn focus_div_one_behaves_like_uniform_range() {
        let edges = focused_edges(64, 1000, 1, 2);
        let max_src = edges.iter().map(|&(v, _)| v).max().unwrap();
        assert!(max_src >= 48);
    }
}
