//! The device-resident dynamic graph.
//!
//! Adjacency arrays live in memory obtained from the manager under test;
//! every adjacency is sized to a power of two ("Each adjacency is aligned
//! to a power of two", §4.4.3) and re-allocated when an insertion crosses
//! the next power-of-two boundary (§4.4.4) — the churn pattern that makes
//! this the survey's concurrent-malloc/free stress test.

use gpumem_core::sync::{AtomicBool, AtomicU64, Ordering};
use std::cell::UnsafeCell;
use std::time::Duration;

use gpu_sim::Device;
use gpumem_core::util::next_pow2;
use gpumem_core::{AllocError, DeviceAllocator, DevicePtr, ThreadCtx};

use crate::gen::CsrGraph;

/// Per-vertex adjacency slot, guarded by a one-bit spin lock so concurrent
/// insertions to the same vertex serialise (matching the original
/// framework's per-adjacency locking).
struct Vertex {
    lock: AtomicBool,
    // memlint: allow(shared-unsafe-cell) — guarded by the per-vertex `lock` spin flag (Acquire CAS / Release store).
    state: UnsafeCell<VertexState>,
}

// SAFETY: `state` is only accessed while `lock` is held.
unsafe impl Sync for Vertex {}

#[derive(Clone, Copy)]
struct VertexState {
    ptr: DevicePtr,
    count: u32,
    capacity_bytes: u64,
}

/// A dynamic graph whose adjacencies live in manager-owned device memory.
pub struct DynGraph<'a> {
    alloc: &'a dyn DeviceAllocator,
    vertices: Vec<Vertex>,
    /// Edge-insertion failures (allocation errors), for reporting.
    failures: AtomicU64,
}

impl<'a> DynGraph<'a> {
    /// Initialises the graph from `csr`, allocating one power-of-two
    /// adjacency per vertex through `alloc` in a device launch. Returns the
    /// graph and the initialisation kernel time (the Figure 11f metric).
    pub fn init(
        alloc: &'a dyn DeviceAllocator,
        device: &Device,
        csr: &CsrGraph,
    ) -> (Self, Duration) {
        let n = csr.vertices();
        let vertices: Vec<Vertex> = (0..n)
            .map(|_| Vertex {
                lock: AtomicBool::new(false),
                state: UnsafeCell::new(VertexState {
                    ptr: DevicePtr::NULL,
                    count: 0,
                    capacity_bytes: 0,
                }),
            })
            .collect();
        let graph = DynGraph { alloc, vertices, failures: AtomicU64::new(0) };
        let heap = alloc.heap();
        let elapsed = device.launch(n, |ctx| {
            let v = ctx.thread_id;
            let adj = csr.neighbors(v);
            let bytes = next_pow2((adj.len().max(1) * 4) as u64);
            match alloc.malloc(ctx, bytes) {
                Ok(p) => {
                    if !adj.is_empty() {
                        let raw: Vec<u8> = adj.iter().flat_map(|t| t.to_le_bytes()).collect();
                        heap.write_bytes(p, &raw);
                    }
                    // Initialisation has exclusive access to each vertex.
                    let _guard = graph.lock_vertex(v);
                    // SAFETY: lock held.
                    unsafe {
                        *graph.vertices[v as usize].state.get() =
                            VertexState { ptr: p, count: adj.len() as u32, capacity_bytes: bytes };
                    }
                }
                Err(_) => {
                    graph.failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        (graph, elapsed)
    }

    fn lock_vertex(&self, v: u32) -> VertexGuard<'_> {
        let lock = &self.vertices[v as usize].lock;
        while lock.compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed).is_err()
        {
            gpumem_core::sync::hint::spin_loop();
        }
        VertexGuard { lock }
    }

    /// Inserts edge `v → u`; grows the adjacency over the next power-of-two
    /// boundary by allocate-copy-free, as the paper's update test case
    /// prescribes.
    pub fn insert_edge(&self, ctx: &ThreadCtx, v: u32, u: u32) -> Result<(), AllocError> {
        let heap = self.alloc.heap();
        let _guard = self.lock_vertex(v);
        // SAFETY: lock held.
        let st = unsafe { &mut *self.vertices[v as usize].state.get() };
        if st.ptr.is_null() {
            return Err(AllocError::InvalidPointer);
        }
        let needed = (st.count as u64 + 1) * 4;
        if needed > st.capacity_bytes {
            let new_cap = next_pow2(needed);
            let new_ptr = self.alloc.malloc(ctx, new_cap)?;
            if st.count > 0 {
                heap.copy(st.ptr, new_ptr, st.count as u64 * 4);
            }
            let old = st.ptr;
            st.ptr = new_ptr;
            st.capacity_bytes = new_cap;
            self.alloc.free(ctx, old)?;
        }
        heap.write_bytes(st.ptr.add(st.count as u64 * 4), &u.to_le_bytes());
        st.count += 1;
        Ok(())
    }

    /// Inserts a batch of edges with one device thread per edge; returns
    /// the kernel time (the Figure 11g metric).
    pub fn insert_edges(&self, device: &Device, edges: &[(u32, u32)]) -> Duration {
        device.launch(edges.len() as u32, |ctx| {
            let (v, u) = edges[ctx.thread_id as usize];
            if self.insert_edge(ctx, v, u).is_err() {
                self.failures.fetch_add(1, Ordering::Relaxed);
            }
        })
    }

    /// Reads back the adjacency of `v` (validation).
    pub fn adjacency(&self, v: u32) -> Vec<u32> {
        let _guard = self.lock_vertex(v);
        // SAFETY: lock held.
        let st = unsafe { &*self.vertices[v as usize].state.get() };
        if st.ptr.is_null() || st.count == 0 {
            return Vec::new();
        }
        let mut raw = vec![0u8; st.count as usize * 4];
        self.alloc.heap().read_bytes(st.ptr, &mut raw);
        raw.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4"))).collect()
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> u32 {
        let _guard = self.lock_vertex(v);
        // SAFETY: lock held.
        unsafe { (*self.vertices[v as usize].state.get()).count }
    }

    /// Total edges currently stored.
    pub fn total_edges(&self) -> u64 {
        (0..self.vertices.len() as u32).map(|v| self.degree(v) as u64).sum()
    }

    /// Vertices in the graph.
    pub fn vertex_count(&self) -> u32 {
        self.vertices.len() as u32
    }

    /// Allocation failures observed so far.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Frees every adjacency (teardown; also a free-heavy benchmark phase).
    pub fn destroy(self, device: &Device) -> Duration {
        let vertices = &self.vertices;
        let alloc = self.alloc;
        device.launch(vertices.len() as u32, |ctx| {
            // SAFETY: teardown launch is the sole accessor per vertex.
            let st = unsafe { &mut *vertices[ctx.thread_id as usize].state.get() };
            if !st.ptr.is_null() {
                let _ = alloc.free(ctx, st.ptr);
                st.ptr = DevicePtr::NULL;
            }
        })
    }
}

struct VertexGuard<'a> {
    lock: &'a AtomicBool,
}

impl Drop for VertexGuard<'_> {
    fn drop(&mut self) {
        self.lock.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use gpu_sim::DeviceSpec;
    use gpumem_core::util::align_up;
    use gpumem_core::{DeviceHeap, ManagerInfo, RegisterFootprint};
    use std::sync::Arc;

    /// Free-capable list allocator for tests (first-fit over a host map).
    struct TestAlloc {
        heap: Arc<DeviceHeap>,
        inner: std::sync::Mutex<TestAllocInner>,
    }

    struct TestAllocInner {
        top: u64,
        free: Vec<(u64, u64)>,
        live: std::collections::HashMap<u64, u64>,
    }

    impl TestAlloc {
        fn new(len: u64) -> Self {
            TestAlloc {
                heap: Arc::new(DeviceHeap::new(len)),
                inner: std::sync::Mutex::new(TestAllocInner {
                    top: 0,
                    free: Vec::new(),
                    live: std::collections::HashMap::new(),
                }),
            }
        }
    }

    impl DeviceAllocator for TestAlloc {
        fn info(&self) -> ManagerInfo {
            ManagerInfo::builder("TestAlloc").build()
        }
        fn heap(&self) -> &DeviceHeap {
            &self.heap
        }
        fn malloc(&self, _ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
            let sz = align_up(size.max(1), 16);
            let mut g = self.inner.lock().unwrap();
            if let Some(i) = g.free.iter().position(|&(_, l)| l >= sz) {
                let (off, _) = g.free.swap_remove(i);
                g.live.insert(off, sz);
                return Ok(DevicePtr::new(off));
            }
            let off = g.top;
            if off + sz > self.heap.len() {
                return Err(AllocError::OutOfMemory(size));
            }
            g.top += sz;
            g.live.insert(off, sz);
            Ok(DevicePtr::new(off))
        }
        fn free(&self, _ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
            let mut g = self.inner.lock().unwrap();
            match g.live.remove(&ptr.offset()) {
                Some(sz) => {
                    g.free.push((ptr.offset(), sz));
                    Ok(())
                }
                None => Err(AllocError::InvalidPointer),
            }
        }
        fn register_footprint(&self) -> RegisterFootprint {
            RegisterFootprint { malloc: 1, free: 1 }
        }
    }

    fn device() -> Device {
        Device::with_workers(DeviceSpec::titan_v(), 4)
    }

    #[test]
    fn init_preserves_adjacencies() {
        let a = TestAlloc::new(32 << 20);
        let csr = generate("fe_body", 64, 11);
        let (g, t) = DynGraph::init(&a, &device(), &csr);
        assert!(t.as_nanos() > 0);
        assert_eq!(g.failures(), 0);
        assert_eq!(g.vertex_count(), csr.vertices());
        for v in (0..csr.vertices()).step_by(53) {
            assert_eq!(g.adjacency(v), csr.neighbors(v), "vertex {v}");
        }
        assert_eq!(g.total_edges(), csr.edges());
    }

    #[test]
    fn insert_within_capacity_keeps_pointer() {
        let a = TestAlloc::new(1 << 20);
        let csr = generate("fe_body", 512, 1);
        let (g, _) = DynGraph::init(&a, &device(), &csr);
        // Vertex with degree d: capacity is next_pow2(4d); inserting up to
        // the boundary must not lose existing neighbours.
        let v = 0u32;
        let before = g.adjacency(v);
        let ctx = ThreadCtx::host();
        g.insert_edge(&ctx, v, 4242).unwrap();
        let after = g.adjacency(v);
        assert_eq!(after.len(), before.len() + 1);
        assert_eq!(&after[..before.len()], &before[..]);
        assert_eq!(*after.last().unwrap(), 4242);
    }

    #[test]
    fn growth_across_pow2_reallocates_and_preserves() {
        let a = TestAlloc::new(1 << 20);
        let csr = generate("fe_body", 512, 2);
        let (g, _) = DynGraph::init(&a, &device(), &csr);
        let ctx = ThreadCtx::host();
        let v = 1u32;
        // Push the degree well past several power-of-two boundaries.
        for i in 0..100u32 {
            g.insert_edge(&ctx, v, 1000 + i).unwrap();
        }
        let adj = g.adjacency(v);
        assert_eq!(adj.len(), csr.degree(v) as usize + 100);
        assert_eq!(&adj[..csr.degree(v) as usize], csr.neighbors(v));
        for i in 0..100u32 {
            assert_eq!(adj[csr.degree(v) as usize + i as usize], 1000 + i);
        }
    }

    #[test]
    fn concurrent_insertions_lose_nothing() {
        let a = TestAlloc::new(32 << 20);
        let csr = generate("fe_body", 64, 3);
        let (g, _) = DynGraph::init(&a, &device(), &csr);
        let n = csr.vertices();
        // 20 000 edges focused on few sources — maximum lock contention.
        let edges: Vec<(u32, u32)> = (0..20_000u32).map(|i| (i % 16, i)).collect();
        let d = g.insert_edges(&device(), &edges);
        assert!(d.as_nanos() > 0);
        assert_eq!(g.failures(), 0);
        assert_eq!(g.total_edges(), csr.edges() + 20_000);
        for v in 0..16u32 {
            assert_eq!(g.degree(v) as u64, csr.degree(v) + 20_000 / 16);
        }
        let _ = n;
    }

    #[test]
    fn destroy_frees_all_memory() {
        let a = TestAlloc::new(8 << 20);
        let csr = generate("fe_body", 128, 4);
        let (g, _) = DynGraph::init(&a, &device(), &csr);
        g.destroy(&device());
        assert!(a.inner.lock().unwrap().live.is_empty(), "leaked adjacencies");
    }

    #[test]
    fn failures_counted_when_heap_exhausted() {
        let a = TestAlloc::new(128 * 1024);
        let csr = generate("rgg_n_2_20_s0", 64, 5); // far too big for 128 KiB
        let (g, _) = DynGraph::init(&a, &device(), &csr);
        assert!(g.failures() > 0);
    }
}
