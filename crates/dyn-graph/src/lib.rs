//! # dyn-graph — dynamic graphs on top of a device memory manager
//!
//! The real-world test cases of the survey (§4.4.3, §4.4.4) initialise a
//! graph whose adjacency lists live in manager-allocated device memory and
//! then update it under edge insertions:
//!
//! * "We test graph initialization performance for a set of graphs taken
//!   from the DIMACS10 graph data set. Each adjacency is aligned to a power
//!   of two."
//! * "As soon as an existing adjacency crosses over a power of two barrier
//!   during the allocation change, we allocate a new adjacency and free the
//!   old adjacency. We test two different scenarios, uniform updates as
//!   well as updates focused on a range of source vertices."
//!
//! The DIMACS10 inputs are not redistributable here; [`gen`] provides
//! synthetic stand-ins matched to each graph's published vertex count and
//! degree distribution (scaled down by default), which is what drives the
//! allocation-size distribution the test case exercises.

pub mod algo;
pub mod gen;
pub mod graph;
pub mod update;

pub use algo::{bfs, degree_histogram, reachable};
pub use gen::{generate, CsrGraph, GRAPH_NAMES};
pub use graph::DynGraph;
pub use update::{focused_edges, uniform_edges};
