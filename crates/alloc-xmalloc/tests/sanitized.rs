//! XMalloc under the shadow-heap sanitizer: basic-block carving, FIFO
//! recycling and the warp-coalesced path must never alias live payloads.

use alloc_xmalloc::XMalloc;
use gpumem_core::sanitize::Sanitized;
use gpumem_core::{DeviceAllocator, DevicePtr, ThreadCtx, WarpCtx};

#[test]
fn fifo_recycling_churn_is_clean() {
    let san = Sanitized::new(XMalloc::with_capacity(16 << 20));
    let ctx = ThreadCtx::host();
    // Repeated same-size cycles force XMalloc's FIFO buffers to recycle
    // blocks; a stale FIFO entry would surface as Overlap or DoubleFree.
    for _ in 0..6 {
        let ptrs: Vec<_> =
            (0..80u64).map(|i| san.malloc(&ctx, 32 + (i % 4) * 32).unwrap()).collect();
        for p in &ptrs {
            san.heap().fill(*p, 32, 0xab);
        }
        for p in ptrs {
            san.free(&ctx, p).unwrap();
        }
    }
    let report = san.take_report();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.live, 0);
}

#[test]
fn coalesced_warp_path_is_clean() {
    let san = Sanitized::new(XMalloc::with_capacity(16 << 20));
    let w = WarpCtx { warp: 2, block: 0, sm: 1 };
    for _ in 0..4 {
        let mut out = [DevicePtr::NULL; 32];
        san.malloc_warp(&w, &[96; 32], &mut out).unwrap();
        for (lane, p) in out.iter().enumerate() {
            san.heap().fill(*p, 96, lane as u8);
        }
        san.free_warp(&w, &out).unwrap();
    }
    let report = san.take_report();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.live, 0);
}

#[test]
fn mmap_backed_heap_run_is_clean() {
    use gpumem_core::{DeviceHeap, HeapBackendKind, HeapSpec, ThreadCtx};
    use std::sync::Arc;
    if !HeapBackendKind::Mmap.available() {
        return;
    }
    // Same manager, lazily-committed MAP_NORESERVE substrate: pages must
    // appear zeroed on first touch exactly like the RAM backend's.
    let heap = Arc::new(DeviceHeap::try_new(HeapSpec::mmap(32 << 20)).unwrap());
    let san = Sanitized::new(XMalloc::new(heap));
    let ctx = ThreadCtx::host();
    let ptrs: Vec<_> = (0..128u64)
        .map(|i| {
            let size = 16 + (i % 16) * 48;
            let p = san.malloc(&ctx, size).unwrap();
            san.heap().fill(p, size, (i % 251) as u8 | 1);
            assert_eq!(san.heap().read_u8(p, size - 1), (i % 251) as u8 | 1);
            p
        })
        .collect();
    for p in ptrs {
        san.free(&ctx, p).unwrap();
    }
    let report = san.take_report();
    assert!(report.is_clean(), "{report}");
}
