//! Model-based property tests for XMalloc's fixed-capacity lock-free FIFO:
//! must behave exactly like a bounded `VecDeque`.

use std::collections::VecDeque;

use alloc_xmalloc::fifo::FifoArray;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Push(u64),
    Pop,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    #[test]
    fn fifo_matches_bounded_vecdeque(
        ops in proptest::collection::vec(
            prop_oneof![
                3 => (1u64..1_000_000).prop_map(Op::Push),
                2 => Just(Op::Pop),
            ],
            1..300,
        ),
        cap_exp in 2u32..8,
    ) {
        let cap = 1usize << cap_exp;
        let q = FifoArray::new(cap);
        prop_assert_eq!(q.capacity(), cap);
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in &ops {
            match op {
                Op::Push(v) => {
                    let accepted = q.push(*v);
                    prop_assert_eq!(
                        accepted,
                        model.len() < cap,
                        "push acceptance must equal capacity check"
                    );
                    if accepted {
                        model.push_back(*v);
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(q.pop(), model.pop_front());
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_empty(), model.is_empty());
        }
        while let Some(v) = model.pop_front() {
            prop_assert_eq!(q.pop(), Some(v));
        }
        prop_assert_eq!(q.pop(), None);
    }
}
