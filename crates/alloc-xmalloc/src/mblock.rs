//! The Memoryblock heap: XMalloc's bottom allocation layer.
//!
//! Paper §2.2 / Figure 1: "Large allocations (as well as Superblocks) are
//! served from a heap, which is segmented into free and allocated
//! Memoryblocks. These blocks form a linked-list, which allows for merging
//! of neighboring blocks. This type of allocation is relatively slow, as the
//! list of memory blocks has to be traversed in search of a free
//! Memoryblock."
//!
//! The port keeps exactly that cost profile: a first-fit traversal from the
//! start of the segment list under one lock, splitting oversized blocks and
//! merging with both physical neighbours on free (`prev_size` backlinks make
//! the list effectively doubly-linked, as in the original).

use std::sync::Mutex;

use gpumem_core::util::align_up;
use gpumem_core::DeviceHeap;

/// Block header size; payload starts `HDR` bytes into a block.
pub const HDR: u64 = 32;

const MAGIC_FREE: u32 = 0x4D42_0000;
const MAGIC_ALLOC: u32 = 0x4D42_0001;

/// First-fit Memoryblock heap over `[base, base+len)` of a shared heap.
pub struct MBlockHeap {
    base: u64,
    len: u64,
    lock: Mutex<()>,
}

// Header accessors (all through the heap's atomic views; the lock makes the
// plain ordering sufficient, the atomics keep the reads defined even if a
// buggy caller races).
fn magic(heap: &DeviceHeap, block: u64) -> u32 {
    heap.load_u32(block)
}
fn set_magic(heap: &DeviceHeap, block: u64, m: u32) {
    heap.store_u32(block, m);
}
fn size(heap: &DeviceHeap, block: u64) -> u64 {
    heap.load_u64(block + 8)
}
fn set_size(heap: &DeviceHeap, block: u64, s: u64) {
    heap.store_u64(block + 8, s);
}
fn prev_size(heap: &DeviceHeap, block: u64) -> u64 {
    heap.load_u64(block + 16)
}
fn set_prev_size(heap: &DeviceHeap, block: u64, s: u64) {
    heap.store_u64(block + 16, s);
}

impl MBlockHeap {
    /// Initialises the segment list: one all-covering free Memoryblock.
    pub fn new(heap: &DeviceHeap, base: u64, len: u64) -> Self {
        assert!(base.is_multiple_of(16) && len.is_multiple_of(16) && len > HDR);
        assert!(base + len <= heap.len());
        set_magic(heap, base, MAGIC_FREE);
        set_size(heap, base, len);
        set_prev_size(heap, base, 0);
        MBlockHeap { base, len, lock: Mutex::new(()) }
    }

    /// Allocates `payload` bytes; returns the payload offset (16-aligned).
    pub fn alloc(&self, heap: &DeviceHeap, payload: u64) -> Option<u64> {
        let mut hops = 0;
        self.alloc_with(heap, payload, &mut hops)
    }

    /// [`MBlockHeap::alloc`] that also counts first-fit traversal hops —
    /// one per Memoryblock visited — into `hops` (the `list_hops` source of
    /// the contention-observability layer; this walk is the slowness the
    /// paper attributes to XMalloc's heap layer).
    pub fn alloc_with(&self, heap: &DeviceHeap, payload: u64, hops: &mut u64) -> Option<u64> {
        let need = align_up(payload, 16) + HDR;
        // memlint: allow(hot-path-panic) — the mblock Mutex models XMalloc's basicblock lock; it only poisons after a prior panic, which the harness treats as fatal
        let _g = self.lock.lock().unwrap();
        let end = self.base + self.len;
        let mut block = self.base;
        while block < end {
            *hops += 1;
            let bsize = size(heap, block);
            debug_assert!(bsize >= HDR && block + bsize <= end, "corrupt memoryblock list");
            if magic(heap, block) == MAGIC_FREE && bsize >= need {
                if bsize - need >= HDR + 16 {
                    // Split: trailing remainder stays free.
                    let rest = block + need;
                    set_magic(heap, rest, MAGIC_FREE);
                    set_size(heap, rest, bsize - need);
                    set_prev_size(heap, rest, need);
                    set_size(heap, block, need);
                    let after = rest + (bsize - need);
                    if after < end {
                        set_prev_size(heap, after, bsize - need);
                    }
                } // else: hand out the whole block (internal fragmentation).
                set_magic(heap, block, MAGIC_ALLOC);
                return Some(block + HDR);
            }
            block += bsize;
        }
        None
    }

    /// Frees a payload offset previously returned by [`MBlockHeap::alloc`],
    /// merging with free physical neighbours. `Err(())` flags an invalid or
    /// doubly freed offset; the caller maps it onto its own error type.
    #[allow(clippy::result_unit_err)]
    pub fn free(&self, heap: &DeviceHeap, payload: u64) -> Result<(), ()> {
        if payload < self.base + HDR || payload >= self.base + self.len {
            return Err(());
        }
        let mut block = payload - HDR;
        // memlint: allow(hot-path-panic) — the mblock Mutex models XMalloc's basicblock lock; it only poisons after a prior panic, which the harness treats as fatal
        let _g = self.lock.lock().unwrap();
        if magic(heap, block) != MAGIC_ALLOC {
            return Err(());
        }
        let end = self.base + self.len;
        let mut bsize = size(heap, block);
        set_magic(heap, block, MAGIC_FREE);
        // Merge forward.
        let next = block + bsize;
        if next < end && magic(heap, next) == MAGIC_FREE {
            bsize += size(heap, next);
            set_size(heap, block, bsize);
        }
        // Merge backward.
        let psize = prev_size(heap, block);
        if psize != 0 {
            let prev = block - psize;
            if magic(heap, prev) == MAGIC_FREE {
                bsize += size(heap, prev);
                block = prev;
                set_size(heap, block, bsize);
            }
        }
        // Fix the backlink of whatever follows the merged block.
        let after = block + bsize;
        if after < end {
            set_prev_size(heap, after, bsize);
        }
        Ok(())
    }

    /// Number of blocks in the list and number of free blocks (diagnostics).
    pub fn census(&self, heap: &DeviceHeap) -> (u64, u64) {
        let _g = self.lock.lock().unwrap();
        let end = self.base + self.len;
        let (mut total, mut free) = (0u64, 0u64);
        let mut block = self.base;
        while block < end {
            total += 1;
            if magic(heap, block) == MAGIC_FREE {
                free += 1;
            }
            block += size(heap, block);
        }
        (total, free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(len: u64) -> (DeviceHeap, MBlockHeap) {
        let heap = DeviceHeap::new(len);
        let mb = MBlockHeap::new(&heap, 0, len);
        (heap, mb)
    }

    #[test]
    fn single_free_block_at_start() {
        let (heap, mb) = setup(4096);
        assert_eq!(mb.census(&heap), (1, 1));
    }

    #[test]
    fn alloc_splits_and_free_merges() {
        let (heap, mb) = setup(4096);
        let a = mb.alloc(&heap, 100).unwrap();
        assert_eq!(a % 16, 0);
        assert_eq!(mb.census(&heap), (2, 1));
        mb.free(&heap, a).unwrap();
        assert_eq!(mb.census(&heap), (1, 1), "free must merge back to one block");
    }

    #[test]
    fn first_fit_reuses_earliest_hole() {
        let (heap, mb) = setup(8192);
        let a = mb.alloc(&heap, 512).unwrap();
        let _b = mb.alloc(&heap, 512).unwrap();
        mb.free(&heap, a).unwrap();
        let c = mb.alloc(&heap, 256).unwrap();
        assert_eq!(c, a, "first fit starts from the list head");
    }

    #[test]
    fn backward_merge_via_prev_size() {
        let (heap, mb) = setup(8192);
        let a = mb.alloc(&heap, 512).unwrap();
        let b = mb.alloc(&heap, 512).unwrap();
        let _c = mb.alloc(&heap, 512).unwrap();
        mb.free(&heap, a).unwrap();
        mb.free(&heap, b).unwrap(); // must merge backward into a's block
        assert_eq!(mb.census(&heap), (3, 2)); // [a+b free][c][tail free]
        let d = mb.alloc(&heap, 1024).unwrap();
        assert_eq!(d, a, "merged hole fits the bigger request");
    }

    #[test]
    fn exhaustion_returns_none() {
        let (heap, mb) = setup(1024);
        assert!(mb.alloc(&heap, 2048).is_none());
        let a = mb.alloc(&heap, 900).unwrap();
        assert!(mb.alloc(&heap, 900).is_none());
        mb.free(&heap, a).unwrap();
        assert!(mb.alloc(&heap, 900).is_some());
    }

    #[test]
    fn invalid_frees_rejected() {
        let (heap, mb) = setup(4096);
        assert!(mb.free(&heap, 8).is_err(), "below first payload");
        assert!(mb.free(&heap, 5000).is_err(), "out of range");
        let a = mb.alloc(&heap, 64).unwrap();
        mb.free(&heap, a).unwrap();
        assert!(mb.free(&heap, a).is_err(), "double free");
    }

    #[test]
    fn many_blocks_roundtrip() {
        let (heap, mb) = setup(1 << 16);
        let ptrs: Vec<u64> = (0..40).map(|_| mb.alloc(&heap, 1000).unwrap()).collect();
        // Free every other block, then the rest; everything merges.
        for p in ptrs.iter().step_by(2) {
            mb.free(&heap, *p).unwrap();
        }
        for p in ptrs.iter().skip(1).step_by(2) {
            mb.free(&heap, *p).unwrap();
        }
        assert_eq!(mb.census(&heap), (1, 1));
    }
}
