//! Fixed-capacity, lock-free FIFO — XMalloc's buffer structure.
//!
//! Paper §2.2: "Both buffers are fixed-capacity, lock-free FIFO arrays".
//! This is a bounded MPMC ring in the style of Vyukov's queue: every slot
//! carries a sequence number that encodes whether it is ready for the next
//! enqueue or dequeue, so producers and consumers synchronise per-slot with
//! a single CAS — the same wait-free-in-the-common-case behaviour the
//! original gets from its SIMD-coalesced FIFO arrays.

use gpumem_core::sync::{AtomicU64, Ordering};

/// A bounded, lock-free multi-producer multi-consumer FIFO of `u64` values.
pub struct FifoArray {
    seq: Box<[AtomicU64]>,
    val: Box<[AtomicU64]>,
    head: AtomicU64,
    tail: AtomicU64,
    mask: u64,
}

impl FifoArray {
    /// Creates a FIFO with capacity `cap` (rounded up to a power of two).
    pub fn new(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(2);
        let seq = (0..cap).map(|i| AtomicU64::new(i as u64)).collect();
        let val = (0..cap).map(|_| AtomicU64::new(0)).collect();
        FifoArray {
            seq,
            val,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            mask: cap as u64 - 1,
        }
    }

    /// Capacity (power of two).
    pub fn capacity(&self) -> usize {
        self.mask as usize + 1
    }

    /// Attempts to enqueue; returns `false` when the buffer is full (the
    /// fixed-capacity property XMalloc's free path depends on — a full
    /// first-level buffer sends the block back to its Superblock instead).
    pub fn push(&self, value: u64) -> bool {
        let mut spins = 0;
        self.push_with(value, &mut spins)
    }

    /// [`FifoArray::push`] that also counts slot spins — every re-try after
    /// a lost ticket CAS or a stale slot observation — into `spins` (the
    /// `queue_spins` source of the contention-observability layer).
    pub fn push_with(&self, value: u64, spins: &mut u64) -> bool {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let idx = (tail & self.mask) as usize;
            let seq = self.seq[idx].load(Ordering::Acquire);
            if seq == tail {
                // Slot ready for this ticket: take the ticket.
                // memlint: allow(relaxed-cas-success) — Vyukov ticket ring: the slot seq word carries the Release/Acquire edge; model-checked in loom_tests.
                match self.tail.compare_exchange_weak(
                    tail,
                    tail + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        self.val[idx].store(value, Ordering::Relaxed);
                        self.seq[idx].store(tail + 1, Ordering::Release);
                        return true;
                    }
                    Err(actual) => {
                        *spins += 1;
                        tail = actual;
                    }
                }
            } else if seq < tail {
                // Slot still holds an element a consumer has not taken: full.
                return false;
            } else {
                *spins += 1;
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to dequeue; `None` when empty.
    pub fn pop(&self) -> Option<u64> {
        let mut spins = 0;
        self.pop_with(&mut spins)
    }

    /// [`FifoArray::pop`] that counts slot spins into `spins` (see
    /// [`FifoArray::push_with`]).
    pub fn pop_with(&self, spins: &mut u64) -> Option<u64> {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let idx = (head & self.mask) as usize;
            let seq = self.seq[idx].load(Ordering::Acquire);
            if seq == head + 1 {
                // memlint: allow(relaxed-cas-success) — ticket claim only; the seq Acquire load above ordered the slot, seq Release below publishes it.
                match self.head.compare_exchange_weak(
                    head,
                    head + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let v = self.val[idx].load(Ordering::Relaxed);
                        self.seq[idx].store(head + self.mask + 1, Ordering::Release);
                        return Some(v);
                    }
                    Err(actual) => {
                        *spins += 1;
                        head = actual;
                    }
                }
            } else if seq <= head {
                return None; // empty
            } else {
                *spins += 1;
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Approximate number of queued elements (diagnostics only).
    pub fn len(&self) -> usize {
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Relaxed);
        t.saturating_sub(h) as usize
    }

    /// Whether the FIFO is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_preserved() {
        let q = FifoArray::new(8);
        for v in 10..15 {
            assert!(q.push(v));
        }
        for v in 10..15 {
            assert_eq!(q.pop(), Some(v));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(FifoArray::new(5).capacity(), 8);
        assert_eq!(FifoArray::new(8).capacity(), 8);
        assert_eq!(FifoArray::new(1).capacity(), 2);
    }

    #[test]
    fn push_fails_when_full() {
        let q = FifoArray::new(4);
        for v in 0..4 {
            assert!(q.push(v));
        }
        assert!(!q.push(99), "full FIFO must reject");
        assert_eq!(q.pop(), Some(0));
        assert!(q.push(99), "one slot freed");
    }

    #[test]
    fn wraparound_many_times() {
        let q = FifoArray::new(4);
        for round in 0..100u64 {
            assert!(q.push(round));
            assert_eq!(q.pop(), Some(round));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn push_races_pop_at_capacity_boundary() {
        // The FIFO is held *at* capacity: producers keep hammering a full
        // ring while a consumer drains it, so every push decides between
        // "slot just vacated" and "still full" under contention. The
        // capacity bound must never be exceeded and no element lost.
        let q = Arc::new(FifoArray::new(4));
        let cap = q.capacity() as u64;
        for v in 1..=cap {
            assert!(q.push(v));
        }
        assert!(!q.push(0), "starts exactly full");
        const N: u64 = 5_000;
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut rejected = 0u64;
                let mut sum = 0u64;
                for i in 0..N {
                    let v = cap + 1 + i;
                    loop {
                        if q.push(v) {
                            sum += v;
                            break;
                        }
                        rejected += 1;
                        std::thread::yield_now();
                    }
                }
                (sum, rejected)
            })
        };
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut sum = 0u64;
                let mut got = 0u64;
                while got < N {
                    if let Some(v) = q.pop() {
                        sum += v;
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
                sum
            })
        };
        let (pushed_sum, _rejected) = producer.join().unwrap();
        let popped_sum = consumer.join().unwrap();
        // Conservation: what the consumer saw is what the producer pushed
        // plus the initial prefill still queued at the end.
        let drained: u64 = std::iter::from_fn(|| q.pop()).sum();
        let prefill: u64 = (1..=cap).sum();
        assert_eq!(popped_sum + drained, pushed_sum + prefill);
        assert!(q.is_empty());
        assert!(q.len() <= q.capacity(), "len never exceeds capacity");
    }

    #[test]
    fn pop_races_push_at_empty_boundary() {
        // Mirror image: the ring is held at/near empty, so every pop decides
        // between "element just arrived" and "still empty" under contention.
        // Empty must report None (not block or tear a value).
        let q = Arc::new(FifoArray::new(4));
        const N: u64 = 5_000;
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut sum = 0u64;
                let mut got = 0u64;
                let mut empties = 0u64;
                while got < N {
                    match q.pop() {
                        Some(v) => {
                            assert!((1..=N).contains(&v), "torn value {v}");
                            sum += v;
                            got += 1;
                        }
                        None => {
                            empties += 1;
                            std::thread::yield_now();
                        }
                    }
                }
                (sum, empties)
            })
        };
        let mut pushed = 0u64;
        for v in 1..=N {
            while !q.push(v) {
                std::thread::yield_now();
            }
            pushed += v;
        }
        let (popped, _empties) = consumer.join().unwrap();
        assert_eq!(popped, pushed);
        assert_eq!(q.pop(), None, "drained ring reports empty");
    }

    #[test]
    fn concurrent_producers_consumers_conserve_elements() {
        let q = Arc::new(FifoArray::new(64));
        let produced = Arc::new(AtomicU64::new(0));
        let consumed = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..2u64 {
            let q = q.clone();
            let produced = produced.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    let v = t * 1_000_000 + i + 1;
                    while !q.push(v) {
                        gpumem_core::sync::hint::spin_loop();
                    }
                    produced.fetch_add(v, Ordering::Relaxed);
                }
            }));
        }
        for _ in 0..2 {
            let q = q.clone();
            let consumed = consumed.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = 0u64;
                while got < 10_000 {
                    if let Some(v) = q.pop() {
                        consumed.fetch_add(v, Ordering::Relaxed);
                        got += 1;
                    } else {
                        gpumem_core::sync::hint::spin_loop();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(produced.load(Ordering::Relaxed), consumed.load(Ordering::Relaxed));
        assert!(q.is_empty());
    }
}

/// Model-checked interleaving suite (built with `RUSTFLAGS="--cfg loom"`).
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use gpumem_core::sync::{model, thread};
    use std::sync::Arc;

    /// Two racing pushes both land and drain back out exactly once — the
    /// ticket ring conserves elements under every schedule.
    #[test]
    fn concurrent_pushes_conserve() {
        model(|| {
            let q = Arc::new(FifoArray::new(4));
            let spawn_push = |v: u64| {
                let q = q.clone();
                thread::spawn(move || assert!(q.push(v), "ring has capacity"))
            };
            let h1 = spawn_push(5);
            let h2 = spawn_push(9);
            h1.join().unwrap();
            h2.join().unwrap();
            let mut got = vec![q.pop().expect("first"), q.pop().expect("second")];
            got.sort_unstable();
            assert_eq!(got, vec![5, 9], "pushed values lost or duplicated");
            assert_eq!(q.pop(), None);
        });
    }

    /// Push racing pop: the popper sees either the whole element or an
    /// empty ring — never a torn slot — and the element survives.
    #[test]
    fn push_vs_pop_never_tears() {
        model(|| {
            let q = Arc::new(FifoArray::new(4));
            let pusher = {
                let q = q.clone();
                thread::spawn(move || assert!(q.push(41)))
            };
            let popper = {
                let q = q.clone();
                thread::spawn(move || q.pop())
            };
            pusher.join().unwrap();
            let got = popper.join().unwrap();
            match got {
                Some(v) => assert_eq!(v, 41, "pop returned a value never pushed"),
                None => assert_eq!(q.pop(), Some(41), "element vanished"),
            }
            assert_eq!(q.pop(), None);
        });
    }
}
