//! # alloc-xmalloc — XMalloc (Huang et al., 2010)
//!
//! "The first, non-proprietary, dynamic memory allocator for GPUs" (paper
//! §2.2). Its structure, reproduced here:
//!
//! * **Memoryblock heap** ([`mblock`]): the bottom layer. The managed region
//!   is segmented into free/allocated Memoryblocks forming a linked list
//!   with neighbour merging; large allocations and fresh Superblocks come
//!   from a (slow) first-fit traversal of this list.
//! * **Superblocks / Basicblocks**: small allocations are rounded to one of
//!   the static sizes (16 B … 2048 B). Each static size has a *first-level
//!   buffer* — a fixed-capacity, lock-free FIFO array ([`fifo`]) — holding
//!   free Basicblocks. Empty first-level buffers are refilled by splitting a
//!   Superblock (taken from the *second-level buffer*, also a lock-free
//!   FIFO) into Basicblocks. New Superblocks are only allocated from the
//!   Memoryblock heap when the second-level buffer is empty too.
//! * **Deallocation** follows Figure 1's three levels: a Basicblock goes
//!   back into the first-level buffer when there is room, otherwise it is
//!   returned to its parent Superblock (a freed-count in the Superblock
//!   header); a fully-returned Superblock re-enters the second-level buffer
//!   or, failing that, is merged back into the Memoryblock heap.
//! * **SIMD (warp) coalescing**: `malloc_warp` combines all lane requests
//!   of a warp into one Memoryblock carrying a live-lane counter — the
//!   "coalescing of allocation requests on the SIMD width" that is
//!   XMalloc's main contribution. Lane frees decrement the counter; the
//!   last lane releases the block.
//!
//! The original is unstable on modern GPUs (Table 1: crashes in most large
//! test cases); the port is memory-safe but preserves the performance
//! *shape*, including the heavy malloc-side state that makes XMalloc the
//! register-count outlier of §4.1.

// Also enforced workspace-wide; restated here so the audit
// guarantee survives if this crate is ever built out of tree.
#![deny(unsafe_op_in_unsafe_fn)]

use gpumem_core::sync::Ordering;
use std::sync::Arc;

use gpumem_core::traits::rollback_partial_warp;
use gpumem_core::util::{align_up, next_pow2};
use gpumem_core::{
    AllocError, Counter, DeviceAllocator, DeviceHeap, DevicePtr, ManagerInfo, Metrics,
    RegisterFootprint, ThreadCtx, WarpCtx, WARP_SIZE,
};

pub mod fifo;
pub mod mblock;

use fifo::FifoArray;
use mblock::MBlockHeap;

/// Static basicblock payload sizes (bytes).
pub const CLASSES: [u64; 8] = [16, 32, 64, 128, 256, 512, 1024, 2048];
/// Item header preceding every payload this manager returns.
pub const ITEM_HDR: u64 = 16;
/// Superblock payload size requested from the Memoryblock heap.
pub const SB_PAYLOAD: u64 = 16 * 1024;
/// Capacity of each first-level FIFO.
pub const FIRST_LEVEL_CAP: usize = 4096;
/// Capacity of the second-level FIFO.
pub const SECOND_LEVEL_CAP: usize = 512;

const MAGIC_ITEM: u32 = 0x584D_0001;
const MAGIC_LARGE: u32 = 0x584D_0002;
const MAGIC_CITEM: u32 = 0x584D_0003;
const MAGIC_CBLK: u32 = 0x584D_0004;
const MAGIC_SB: u32 = 0x584D_0005;

/// The XMalloc memory manager.
pub struct XMalloc {
    heap: Arc<DeviceHeap>,
    mblocks: MBlockHeap,
    /// First-level buffers: free Basicblock offsets, one FIFO per class.
    first_level: [FifoArray; CLASSES.len()],
    /// Second-level buffer: free Superblock payload offsets.
    second_level: FifoArray,
    metrics: Metrics,
}

/// Locals live in `malloc` — the coalescing machinery keeps per-lane sizes,
/// the prefix offsets and the ballot state alive simultaneously, which is
/// why XMalloc's malloc is the register-count outlier of the survey
/// (168 registers reported in §4.1).
#[repr(C)]
struct MallocFrame {
    lane_sizes: [u32; WARP_SIZE as usize],
    lane_prefix: [u64; WARP_SIZE as usize],
    ballot_mask: u32,
    leader: u32,
    class_idx: u32,
    rounded: u32,
    total: u64,
    bb: u64,
    sb: u64,
    cursor: u64,
    n_bbs: u32,
    pushed: u32,
    mb_block: u64,
    mb_size: u64,
    state: u32,
    retries: u32,
    header_word: u64,
    result: u64,
    spill: [u64; 14],
}

/// Locals live in `free`.
#[repr(C)]
struct FreeFrame {
    item: u64,
    magic: u32,
    class_idx: u32,
    parent: u64,
    freed: u32,
    total: u32,
    cblock: u64,
    live: u32,
    state: u32,
    spill: [u64; 4],
}

impl XMalloc {
    /// Creates XMalloc over all of `heap`.
    pub fn new(heap: Arc<DeviceHeap>) -> Self {
        let mblocks = MBlockHeap::new(&heap, 0, heap.len());
        XMalloc {
            heap,
            mblocks,
            first_level: std::array::from_fn(|_| FifoArray::new(FIRST_LEVEL_CAP)),
            second_level: FifoArray::new(SECOND_LEVEL_CAP),
            metrics: Metrics::disabled(),
        }
    }

    /// Convenience constructor owning its heap.
    pub fn with_capacity(len: u64) -> Self {
        Self::new(Arc::new(DeviceHeap::new(len)))
    }

    /// Attaches a contention-observability handle (builder style).
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// FIFO pop with the op's slot spins recorded as `queue_spins`.
    fn pop_counted(&self, sm: u32, q: &FifoArray) -> Option<u64> {
        let mut spins = 0;
        let r = q.pop_with(&mut spins);
        self.metrics.add(sm, Counter::QueueSpins, spins);
        r
    }

    /// FIFO push with the op's slot spins recorded as `queue_spins`.
    fn push_counted(&self, sm: u32, q: &FifoArray, value: u64) -> bool {
        let mut spins = 0;
        let r = q.push_with(value, &mut spins);
        self.metrics.add(sm, Counter::QueueSpins, spins);
        r
    }

    /// Memoryblock-heap allocation with the first-fit walk recorded as
    /// `list_hops`.
    fn mblock_alloc_counted(&self, sm: u32, payload: u64) -> Option<u64> {
        let mut hops = 0;
        let r = self.mblocks.alloc_with(&self.heap, payload, &mut hops);
        self.metrics.add(sm, Counter::ListHops, hops);
        r
    }

    fn class_index(size: u64) -> usize {
        let c = next_pow2(size.max(16));
        (c.trailing_zeros() - 4) as usize
    }

    fn write_item_header(&self, item: u64, magic: u32, word: u32, parent: u64) {
        self.heap.store_u32(item, magic);
        self.heap.store_u32(item + 4, word);
        self.heap.store_u64(item + 8, parent);
    }

    /// Splits a fresh/recycled Superblock for `class_idx` and returns one
    /// Basicblock, pushing the rest into the first-level buffer.
    fn carve_superblock(&self, sm: u32, sb: u64, class_idx: usize) -> u64 {
        let class = CLASSES[class_idx];
        let stride = class + ITEM_HDR;
        let n = ((SB_PAYLOAD - 16) / stride) as u32;
        debug_assert!(n >= 2);
        // Superblock header: magic, freed counter, total, class.
        self.heap.store_u32(sb, MAGIC_SB);
        self.heap.store_u32(sb + 4, 0);
        self.heap.store_u32(sb + 8, n);
        self.heap.store_u32(sb + 12, class_idx as u32);
        let first_bb = sb + 16;
        let mut returned_to_sb = 0u32;
        for i in 1..n {
            let bb = first_bb + i as u64 * stride;
            self.write_item_header(bb, MAGIC_ITEM, class_idx as u32, sb);
            if !self.push_counted(sm, &self.first_level[class_idx], bb) {
                // Buffer full: these blocks count as returned to the SB.
                returned_to_sb += 1;
            }
        }
        if returned_to_sb > 0 {
            self.heap.atomic_u32(sb + 4).fetch_add(returned_to_sb, Ordering::AcqRel);
        }
        self.write_item_header(first_bb, MAGIC_ITEM, class_idx as u32, sb);
        first_bb
    }

    fn malloc_small(&self, sm: u32, class_idx: usize) -> Result<DevicePtr, AllocError> {
        // Fast path: first-level buffer.
        if let Some(bb) = self.pop_counted(sm, &self.first_level[class_idx]) {
            return Ok(DevicePtr::new(bb + ITEM_HDR));
        }
        // Refill: second-level buffer, then the Memoryblock heap.
        let sb = match self.pop_counted(sm, &self.second_level) {
            Some(sb) => sb,
            None => self
                .mblock_alloc_counted(sm, SB_PAYLOAD)
                .ok_or(AllocError::OutOfMemory(CLASSES[class_idx]))?,
        };
        let bb = self.carve_superblock(sm, sb, class_idx);
        Ok(DevicePtr::new(bb + ITEM_HDR))
    }

    fn malloc_large(&self, sm: u32, size: u64) -> Result<DevicePtr, AllocError> {
        // Checked: `size + ITEM_HDR` wrapping would turn an absurd request
        // into a small (apparently successful) mblock carve.
        let need = size.checked_add(ITEM_HDR).ok_or(AllocError::UnsupportedSize(size))?;
        let mp = self.mblock_alloc_counted(sm, need).ok_or(AllocError::OutOfMemory(size))?;
        self.write_item_header(mp, MAGIC_LARGE, 0, 0);
        Ok(DevicePtr::new(mp + ITEM_HDR))
    }

    /// Returns a Basicblock to its parent Superblock; reclaims the
    /// Superblock once every Basicblock is home.
    fn return_to_superblock(&self, sm: u32, sb: u64) {
        debug_assert_eq!(self.heap.load_u32(sb), MAGIC_SB);
        let total = self.heap.load_u32(sb + 8);
        let prev = self.heap.atomic_u32(sb + 4).fetch_add(1, Ordering::AcqRel);
        if prev + 1 == total {
            // All Basicblocks returned: recycle the Superblock.
            if !self.push_counted(sm, &self.second_level, sb) {
                let _ = self.mblocks.free(&self.heap, sb);
            }
        }
    }

    /// The three-level deallocation of Figure 1 (call accounting lives in
    /// the trait wrapper).
    fn free_inner(&self, sm: u32, ptr: DevicePtr) -> Result<(), AllocError> {
        if ptr.is_null() || ptr.offset() < ITEM_HDR || ptr.offset() >= self.heap.len() {
            return Err(AllocError::InvalidPointer);
        }
        let item = ptr.offset() - ITEM_HDR;
        match self.heap.load_u32(item) {
            MAGIC_ITEM => {
                let class_idx = self.heap.load_u32(item + 4) as usize;
                let sb = self.heap.load_u64(item + 8);
                if class_idx >= CLASSES.len()
                    || sb + 16 > self.heap.len()
                    || self.heap.load_u32(sb) != MAGIC_SB
                {
                    return Err(AllocError::InvalidPointer);
                }
                if !self.push_counted(sm, &self.first_level[class_idx], item) {
                    self.return_to_superblock(sm, sb);
                }
                Ok(())
            }
            MAGIC_LARGE => {
                self.mblocks.free(&self.heap, item).map_err(|()| AllocError::InvalidPointer)
            }
            MAGIC_CITEM => {
                let back = self.heap.load_u32(item + 4) as u64;
                if back > item {
                    return Err(AllocError::InvalidPointer);
                }
                let cblock = item - back;
                if self.heap.load_u32(cblock) != MAGIC_CBLK {
                    return Err(AllocError::InvalidPointer);
                }
                // Tombstone the item header so a double free is caught.
                self.heap.store_u32(item, 0);
                let live = self.heap.atomic_u32(cblock + 4).fetch_sub(1, Ordering::AcqRel);
                if live == 1 {
                    self.heap.store_u32(cblock, 0);
                    self.mblocks
                        .free(&self.heap, cblock)
                        .map_err(|()| AllocError::InvalidPointer)?;
                }
                Ok(())
            }
            _ => Err(AllocError::InvalidPointer),
        }
    }
}

impl DeviceAllocator for XMalloc {
    fn info(&self) -> ManagerInfo {
        ManagerInfo::builder("XMalloc").instrumented(true).build()
    }

    fn heap(&self) -> &DeviceHeap {
        &self.heap
    }

    fn malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        self.metrics.tick(ctx.sm, Counter::MallocCalls);
        let r = if size == 0 {
            Err(AllocError::UnsupportedSize(0))
        } else if size <= CLASSES[CLASSES.len() - 1] {
            self.malloc_small(ctx.sm, Self::class_index(size))
        } else {
            self.malloc_large(ctx.sm, size)
        };
        if r.is_err() {
            self.metrics.tick(ctx.sm, Counter::MallocFailures);
        }
        r
    }

    fn free(&self, ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
        self.metrics.tick(ctx.sm, Counter::FreeCalls);
        let r = self.free_inner(ctx.sm, ptr);
        if r.is_err() {
            self.metrics.tick(ctx.sm, Counter::FreeFailures);
        }
        r
    }

    /// SIMD-width coalescing: all lane requests become one Memoryblock with
    /// a live-lane counter.
    fn malloc_warp(
        &self,
        warp: &WarpCtx,
        sizes: &[u64],
        out: &mut [DevicePtr],
    ) -> Result<(), AllocError> {
        debug_assert_eq!(sizes.len(), out.len());
        if sizes.is_empty() {
            return Ok(());
        }
        let total: u64 = 16 + sizes.iter().map(|&s| align_up(s.max(1), 16) + ITEM_HDR).sum::<u64>();
        match self.mblock_alloc_counted(warp.sm, total) {
            Some(cblock) => {
                self.metrics.add(warp.sm, Counter::MallocCalls, sizes.len() as u64);
                self.metrics.add(warp.sm, Counter::WarpCoalesced, sizes.len() as u64);
                self.heap.store_u32(cblock, MAGIC_CBLK);
                self.heap.store_u32(cblock + 4, sizes.len() as u32);
                self.heap.store_u64(cblock + 8, total);
                let mut cursor = cblock + 16;
                for (&size, slot) in sizes.iter().zip(out.iter_mut()) {
                    self.write_item_header(cursor, MAGIC_CITEM, (cursor - cblock) as u32, cblock);
                    *slot = DevicePtr::new(cursor + ITEM_HDR);
                    cursor += align_up(size.max(1), 16) + ITEM_HDR;
                }
                Ok(())
            }
            None => {
                // Coalesced block does not fit: fall back to lane-by-lane.
                // All-or-nothing like the trait default: a failing lane rolls
                // back the lanes already granted and nulls every out slot.
                for lane in 0..sizes.len() {
                    match self.malloc(&warp.lane(lane as u32), sizes[lane]) {
                        Ok(ptr) => out[lane] = ptr,
                        Err(e) => {
                            rollback_partial_warp(self, warp, &mut out[..lane]);
                            for slot in out.iter_mut() {
                                *slot = DevicePtr::NULL;
                            }
                            return Err(e);
                        }
                    }
                }
                Ok(())
            }
        }
    }

    fn register_footprint(&self) -> RegisterFootprint {
        RegisterFootprint::from_frames(
            std::mem::size_of::<MallocFrame>(),
            std::mem::size_of::<FreeFrame>(),
        )
    }

    fn metrics(&self) -> Metrics {
        self.metrics.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_core::traits::DeviceAllocatorExt;

    const HEAP: u64 = 4 << 20;

    fn ctx() -> ThreadCtx {
        ThreadCtx::host()
    }

    fn alloc() -> XMalloc {
        XMalloc::with_capacity(HEAP)
    }

    #[test]
    fn class_rounding() {
        assert_eq!(XMalloc::class_index(1), 0);
        assert_eq!(XMalloc::class_index(16), 0);
        assert_eq!(XMalloc::class_index(17), 1);
        assert_eq!(XMalloc::class_index(2048), 7);
    }

    #[test]
    fn small_allocation_roundtrip() {
        let a = alloc();
        let p = a.checked_malloc(&ctx(), 100).unwrap();
        a.heap().fill(p, 100, 0x11);
        a.free(&ctx(), p).unwrap();
    }

    #[test]
    fn first_level_buffer_recycles_freed_blocks() {
        let a = alloc();
        let p = a.malloc(&ctx(), 64).unwrap();
        a.free(&ctx(), p).unwrap();
        // The freed basicblock is somewhere in the FIFO; allocating the
        // same class drains the FIFO and must eventually return it.
        let mut found = false;
        for _ in 0..FIRST_LEVEL_CAP {
            if a.malloc(&ctx(), 64).unwrap() == p {
                found = true;
                break;
            }
        }
        assert!(found, "freed basicblock never reappeared");
    }

    #[test]
    fn large_allocations_bypass_buffers() {
        let a = alloc();
        let p = a.checked_malloc(&ctx(), 100_000).unwrap();
        a.heap().fill(p, 100_000, 0x22);
        a.free(&ctx(), p).unwrap();
        let q = a.malloc(&ctx(), 100_000).unwrap();
        assert_eq!(p, q, "memoryblock heap merges and reuses");
    }

    #[test]
    fn warp_coalescing_packs_lanes_contiguously() {
        let a = alloc();
        let w = WarpCtx { warp: 0, block: 0, sm: 0 };
        let sizes = [48u64; 32];
        let mut out = [DevicePtr::NULL; 32];
        a.malloc_warp(&w, &sizes, &mut out).unwrap();
        for pair in out.windows(2) {
            assert_eq!(
                pair[1].offset() - pair[0].offset(),
                48 + ITEM_HDR,
                "lane payloads must be contiguous with one header stride"
            );
        }
        // Frees release the coalesced block only when the last lane frees.
        for &p in &out {
            a.free(&ctx(), p).unwrap();
        }
        // The whole block is reusable again.
        let p = a.malloc(&ctx(), 100_000).unwrap();
        a.free(&ctx(), p).unwrap();
    }

    #[test]
    fn coalesced_double_free_detected() {
        let a = alloc();
        let w = WarpCtx { warp: 0, block: 0, sm: 0 };
        let mut out = [DevicePtr::NULL; 2];
        a.malloc_warp(&w, &[32, 32], &mut out).unwrap();
        a.free(&ctx(), out[0]).unwrap();
        assert_eq!(a.free(&ctx(), out[0]), Err(AllocError::InvalidPointer));
        a.free(&ctx(), out[1]).unwrap();
    }

    #[test]
    fn superblock_recycled_after_all_basicblocks_return() {
        let a = alloc();
        let stride = 2048 + ITEM_HDR;
        let per_sb = ((SB_PAYLOAD - 16) / stride) as usize; // 7
        let n = per_sb * 3;
        let ptrs: Vec<DevicePtr> = (0..n).map(|_| a.malloc(&ctx(), 2048).unwrap()).collect();
        for p in &ptrs {
            a.free(&ctx(), *p).unwrap();
        }
        // Allocate again — everything must still work (recycled SBs).
        let again: Vec<DevicePtr> = (0..n).map(|_| a.malloc(&ctx(), 2048).unwrap()).collect();
        assert_eq!(again.len(), n);
    }

    #[test]
    fn zero_size_rejected() {
        let a = alloc();
        assert_eq!(a.malloc(&ctx(), 0), Err(AllocError::UnsupportedSize(0)));
    }

    #[test]
    fn invalid_pointers_rejected() {
        let a = alloc();
        assert_eq!(a.free(&ctx(), DevicePtr::NULL), Err(AllocError::InvalidPointer));
        assert_eq!(a.free(&ctx(), DevicePtr::new(4)), Err(AllocError::InvalidPointer));
        assert_eq!(
            a.free(&ctx(), DevicePtr::new(HEAP / 2)),
            Err(AllocError::InvalidPointer),
            "pointer into unwritten heap has no item magic"
        );
    }

    #[test]
    fn mixed_sizes_do_not_overlap() {
        let a = alloc();
        let mut spans = Vec::new();
        for i in 0..400u64 {
            let size = 16 << (i % 6);
            let p = a.malloc(&ctx(), size).unwrap();
            spans.push((p.offset(), size));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap {:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn oom_reported_and_recoverable() {
        let a = XMalloc::with_capacity(256 * 1024);
        let mut ptrs = Vec::new();
        loop {
            match a.malloc(&ctx(), 2048) {
                Ok(p) => ptrs.push(p),
                Err(AllocError::OutOfMemory(_)) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert!(ptrs.len() >= 100, "{} blocks", ptrs.len());
        for p in ptrs {
            a.free(&ctx(), p).unwrap();
        }
        assert!(a.malloc(&ctx(), 2048).is_ok());
    }

    #[test]
    fn concurrent_stress_no_overlap() {
        let a = Arc::new(XMalloc::with_capacity(8 << 20));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                let mut live = Vec::new();
                for i in 0..2000u32 {
                    let c = ThreadCtx::from_linear(t * 2000 + i, 256, 80);
                    let size = 16u64 << (i % 7);
                    let p = a.malloc(&c, size).expect("8 MiB is plenty");
                    a.heap().fill(p, size, 0x99);
                    live.push((p, size));
                    if i % 2 == 1 {
                        let (p, _) = live.swap_remove(0);
                        a.free(&c, p).unwrap();
                    }
                }
                live.into_iter().map(|(p, s)| (p.offset(), s)).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<(u64, u64)> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        for w in all.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap {:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn register_footprint_is_the_malloc_outlier() {
        let fp = alloc().register_footprint();
        assert!(fp.malloc >= 120, "XMalloc malloc must dwarf the field: {fp}");
        assert!(fp.free <= 30, "free stays modest: {fp}");
    }

    #[test]
    fn near_max_request_fails_instead_of_wrapping() {
        // Regression (memlint unchecked-offset-arithmetic): the large-path
        // `size + ITEM_HDR` used to wrap for near-u64::MAX requests and
        // carve a tiny mblock for an absurd request.
        let a = alloc();
        for size in [u64::MAX, u64::MAX - ITEM_HDR + 1] {
            assert!(
                matches!(a.malloc(&ctx(), size), Err(AllocError::UnsupportedSize(_))),
                "size {size:#x} must be rejected, not wrapped"
            );
        }
    }
}
