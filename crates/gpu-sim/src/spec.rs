//! Device presets — the two GPUs the paper evaluates on.

/// Static description of a simulated device.
///
/// The SM count feeds the `ThreadCtx::sm` assignment (and thereby every
/// SM-scattering allocator); the V-RAM size bounds the default manageable
/// memory; `default_block_size` matches the 256-thread blocks the survey's
/// test kernels launch with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Marketing name, used in CSV output.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Device memory in bytes.
    pub vram: u64,
    /// Threads per block for kernel launches.
    pub default_block_size: u32,
}

impl DeviceSpec {
    /// NVIDIA TITAN V (Volta, 80 SMs, 12 GB) — the paper's primary device.
    pub const fn titan_v() -> Self {
        DeviceSpec { name: "TITANV", num_sms: 80, vram: 12 * (1 << 30), default_block_size: 256 }
    }

    /// NVIDIA RTX 2080 Ti (Turing, 68 SMs, 11 GB) — the paper's secondary
    /// device (Figures 9e/9f and the GitHub result set).
    pub const fn rtx_2080ti() -> Self {
        DeviceSpec { name: "2080Ti", num_sms: 68, vram: 11 * (1 << 30), default_block_size: 256 }
    }

    /// Looks a preset up by (case-insensitive) name, accepting the spellings
    /// the artifact's scripts use.
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "titanv" | "titan_v" | "titan-v" => Some(Self::titan_v()),
            "2080ti" | "rtx2080ti" | "rtx_2080ti" | "rtx-2080ti" => Some(Self::rtx_2080ti()),
            _ => None,
        }
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::titan_v()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_hardware() {
        let tv = DeviceSpec::titan_v();
        assert_eq!(tv.num_sms, 80);
        assert_eq!(tv.vram, 12 << 30);
        let ti = DeviceSpec::rtx_2080ti();
        assert_eq!(ti.num_sms, 68);
        assert_eq!(ti.vram, 11 << 30);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(DeviceSpec::by_name("TITANV").unwrap().name, "TITANV");
        assert_eq!(DeviceSpec::by_name("2080ti").unwrap().name, "2080Ti");
        assert!(DeviceSpec::by_name("a100").is_none());
    }

    #[test]
    fn default_is_titan_v() {
        assert_eq!(DeviceSpec::default().name, "TITANV");
    }
}
