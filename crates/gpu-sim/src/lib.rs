//! # gpu-sim
//!
//! A SIMT-style execution substrate that stands in for the CUDA runtime the
//! survey's framework launches its test kernels on.
//!
//! The model: a *kernel launch* executes `n` logical threads. Threads are
//! grouped into warps of 32; warps are claimed from a shared queue by a
//! **persistent pool** of OS worker threads that play the role of streaming
//! multiprocessors — workers park between kernels and are released through
//! a staging barrier, so reported kernel times cover the parallel section
//! alone (dispatch overhead is reported separately, see
//! [`exec::SchedStats`]). Every logical thread receives a
//! [`ThreadCtx`](gpumem_core::ThreadCtx) with its thread/lane/warp/block/SM
//! coordinates — the same identifiers the surveyed allocators hash and
//! scatter by.
//!
//! What is *not* modelled: instruction-level SIMD lockstep and divergence
//! penalties. The surveyed allocators' performance differences come from
//! their shared-state algorithms (hash probing vs. list walking vs. queue
//! operations), which execute natively here; warp-aggregation benefits are
//! preserved through the warp-level entry points of the allocator trait.
//!
//! Also provided:
//!
//! * [`DeviceSpec`] — named device presets (NVIDIA TITAN V, RTX 2080Ti) so
//!   the benchmark harness can reproduce the paper's two-device axis.
//! * [`access`] — the memory-coalescing transaction model behind the
//!   Fig. 11e access-performance test case.
//! * [`PerThread`] — a per-thread output buffer for kernels that produce one
//!   value per thread (e.g. "each thread stores its allocated pointer").

pub mod access;
pub mod exec;
pub mod spec;

pub use exec::{Device, LaunchHook, LaunchPhase, LaunchReport, PerThread, SchedStats};
pub use spec::DeviceSpec;
