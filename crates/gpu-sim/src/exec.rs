//! The kernel executor: schedules logical GPU threads onto a persistent
//! pool of OS workers.
//!
//! # Timing protocol
//!
//! Every benchmark number the repro produces flows through
//! [`Device::launch`], so the executor must not charge host-side scheduling
//! cost to the kernel. The pool achieves that with a two-phase barrier:
//!
//! 1. **Dispatch** — the launcher installs the kernel body, bumps the launch
//!    generation and wakes the parked workers. Each worker *stages* at a
//!    release barrier. All of this (condvar wake-up, cache warm-up of the
//!    job state) is counted as [`SchedStats::dispatch`].
//! 2. **Parallel section** — once every worker is staged, the launcher reads
//!    the clock and releases the barrier. Workers drain the warp queue; the
//!    *last warp to retire* stamps the end time. `elapsed` is exactly
//!    `end − release`, the parallel section alone.
//!
//! The pre-pool executor spawned scoped OS threads per launch and timed
//! spawn + join along with the kernel — tens to hundreds of µs of overhead
//! that dominated short launches. It survives as
//! [`Device::spawn_launch`], the baseline the launch-overhead
//! microbenchmark (`repro exec-bench`) and the timing-fidelity test compare
//! against.

use gpumem_core::sync::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use gpumem_core::trace::EventKind;
use gpumem_core::{CounterSnapshot, Metrics, ThreadCtx, WarpCtx, WARP_SIZE};

use crate::spec::DeviceSpec;

/// A kernel-launch lifecycle notification, delivered to the callback
/// installed with [`Device::set_launch_hook`].
///
/// `Begin` fires once the launch gate is held and the grid is about to
/// dispatch; `End` fires after the last warp retires and carries the
/// parallel-section wall clock. `seq` is a per-device launch counter that
/// pairs the two phases. The legacy [`Device::spawn_launch`] baseline
/// bypasses the pool and does **not** fire hooks.
#[derive(Clone, Copy, Debug)]
pub enum LaunchPhase {
    /// The grid is about to dispatch onto the pool.
    Begin {
        /// Per-device launch sequence number.
        seq: u64,
        /// Warps in this grid.
        n_warps: u32,
    },
    /// The last warp of the grid retired.
    End {
        /// Per-device launch sequence number (matches the `Begin`).
        seq: u64,
        /// Warps in this grid.
        n_warps: u32,
        /// Parallel-section duration (the same clock [`Device::launch`]
        /// returns).
        elapsed: Duration,
    },
}

/// Callback type for [`Device::set_launch_hook`]. Runs on the launching
/// thread with the launch gate held, so it must not launch on the same
/// device (that would self-deadlock) and should be quick — its cost lands
/// between grids, not inside the timed parallel section, but it still
/// delays back-to-back launches.
pub type LaunchHook = Arc<dyn Fn(LaunchPhase) + Send + Sync>;

/// Outcome of an observed launch: kernel wall-clock time plus the
/// contention-counter activity attributable to that launch (the delta of
/// the allocator's [`Metrics`] over the parallel section).
#[derive(Clone, Debug, Default)]
pub struct LaunchReport {
    /// Wall-clock time of the parallel section (dispatch excluded).
    pub elapsed: Duration,
    /// Counter deltas accumulated during the launch. All-zero when the
    /// allocator's metrics are disabled.
    pub counters: CounterSnapshot,
    /// Scheduler-side observability: dispatch overhead, worker balance and
    /// steal count for the launch.
    pub sched: SchedStats,
}

/// Scheduler observability for one launch.
#[derive(Clone, Debug, Default)]
pub struct SchedStats {
    /// Host-side dispatch overhead: launch entry until every worker is
    /// staged at the release barrier. *Not* part of the kernel time.
    pub dispatch: Duration,
    /// Size of the worker pool (1 = inline execution on the caller).
    pub workers: usize,
    /// Warp-claim chunk size the launch used (see [`chunk_for`]).
    pub chunk: u32,
    /// Warps each worker executed, indexed by worker id. An inline launch
    /// reports `[n_warps]`.
    pub warps_per_worker: Vec<u32>,
    /// Extra trips to the shared claim counter beyond each participating
    /// worker's first — how much rebalancing the launch needed.
    pub steals: u64,
}

impl SchedStats {
    /// Workers that executed at least one warp.
    pub fn workers_used(&self) -> usize {
        self.warps_per_worker.iter().filter(|&&w| w > 0).count()
    }
}

/// Upper bound on the warp-claim chunk: keeps the claim counter cold on
/// large launches.
const MAX_CLAIM_CHUNK: u32 = 16;

/// Lower bound on claim trips per worker the chunk size aims for: keeps
/// tail imbalance low and guarantees launches with `n_warps ≥ workers`
/// spread over the whole pool.
const TARGET_CLAIMS_PER_WORKER: u32 = 4;

/// Chunk size for a launch. The fixed chunk of 16 the executor used to
/// claim meant a 16-warp launch ran serially on one worker and a 128-warp
/// launch used at most 8; shrinking the chunk with the launch keeps every
/// worker fed.
fn chunk_for(n_warps: u32, workers: usize) -> u32 {
    (n_warps / (workers as u32 * TARGET_CLAIMS_PER_WORKER)).clamp(1, MAX_CLAIM_CHUNK)
}

/// Type-erased kernel body shared with the workers for one launch.
///
/// The pointee is borrowed from the launcher's stack; the launch protocol
/// bounds its use: a worker dereferences it only between the release
/// barrier and its `done` increment, and `run_pooled` does not return
/// before `done` reaches the pool size.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(u32) + Sync));

// SAFETY: the pointee is `Sync`, and the launch protocol (type docs) keeps
// it alive for every dereference.
unsafe impl Send for JobPtr {}

/// Mutex-guarded launch hand-off state.
struct PoolState {
    /// Launch generation; bumped once per launch to wake the workers.
    gen: u64,
    /// Kernel body of the in-flight launch.
    job: Option<JobPtr>,
    n_warps: u32,
    chunk: u32,
    /// First panic payload caught from a kernel body this launch; rethrown
    /// by the launcher.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

/// Per-worker launch statistics (reset by the launcher, written by the
/// owning worker after it drains).
struct WorkerSlot {
    warps: AtomicU32,
    claims: AtomicU32,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Wakes parked workers when `gen` advances or `shutdown` is set.
    start_cv: Condvar,
    /// Wakes the launcher when the last worker retires.
    done_cv: Condvar,
    /// Time base for the `end_nanos` stamp.
    epoch: Instant,
    /// Next warp id to claim.
    next: AtomicU32,
    /// Workers staged at the release barrier.
    staged: AtomicUsize,
    /// Generation the staged workers may start draining.
    release_gen: AtomicU64,
    /// Workers retired from the current launch.
    done: AtomicUsize,
    /// Retire time of the last warp (max over workers that executed at
    /// least one warp, nanos since `epoch`). Stamped *before* the `done`
    /// increment so the launcher never reads a stale value. Workers that
    /// found the queue already drained do not stamp: their late wake-up is
    /// scheduler churn, not kernel time.
    end_nanos: AtomicU64,
    /// Iterations to busy-spin in barrier waits before yielding. Tuned at
    /// pool construction: on hosts with fewer cores than pool threads,
    /// spinning only steals the core the awaited thread needs, so the
    /// limit drops to near zero.
    spin_limit: u32,
    slots: Vec<WorkerSlot>,
}

/// Locks a pool mutex, shrugging off poisoning: a kernel panic unwinds
/// through the launcher with the launch gate held (poisoning it), but every
/// guarded field is reset at the next launch, so the state stays valid.
fn lock_pool<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// As [`lock_pool`], for condvar waits.
fn wait_pool<'a, T>(
    cv: &Condvar,
    guard: std::sync::MutexGuard<'a, T>,
) -> std::sync::MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Spin until `limit`, then yield: the waits this backs (staging, release)
/// are bounded by a condvar wake-up, i.e. microseconds on an idle core —
/// but on an oversubscribed host the awaited thread needs *this* core, so
/// past the limit the waiter hands it over.
#[inline]
fn spin_or_yield(spins: &mut u32, limit: u32) {
    *spins += 1;
    if *spins > limit {
        std::thread::yield_now();
    } else {
        gpumem_core::sync::hint::spin_loop();
    }
}

fn worker_loop(shared: Arc<Shared>, idx: usize, workers: usize) {
    let mut seen = 0u64;
    loop {
        // Park until the launcher publishes a new generation.
        let (gen, job, n_warps, chunk) = {
            let mut st = lock_pool(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.gen != seen {
                    break;
                }
                st = wait_pool(&shared.start_cv, st);
            }
            seen = st.gen;
            (st.gen, st.job.expect("job installed before gen bump"), st.n_warps, st.chunk)
        };
        // Stage, then hold at the barrier until the launcher has read the
        // clock. Everything up to the release is dispatch overhead.
        shared.staged.fetch_add(1, Ordering::AcqRel);
        let mut spins = 0u32;
        while shared.release_gen.load(Ordering::Acquire) != gen {
            spin_or_yield(&mut spins, shared.spin_limit);
        }
        // SAFETY: launch protocol (JobPtr docs) — the body outlives every
        // dereference made before the `done` increment below.
        let body = unsafe { &*job.0 };
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            let mut warps = 0u32;
            let mut claims = 0u32;
            loop {
                let first = shared.next.fetch_add(chunk, Ordering::Relaxed);
                if first >= n_warps {
                    break;
                }
                let last = first.saturating_add(chunk).min(n_warps);
                claims += 1;
                for w in first..last {
                    body(w);
                }
                warps += last - first;
            }
            (warps, claims)
        }));
        let ran_warps = match outcome {
            Ok((warps, claims)) => {
                shared.slots[idx].warps.store(warps, Ordering::Relaxed);
                shared.slots[idx].claims.store(claims, Ordering::Relaxed);
                warps > 0
            }
            Err(payload) => {
                // Park the queue so peers stop claiming; keep the first
                // payload for the launcher to rethrow.
                shared.next.store(n_warps, Ordering::Relaxed);
                let mut st = lock_pool(&shared.state);
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
                true
            }
        };
        // Stamp before retiring: the launcher may observe the final `done`
        // the instant it lands. Only warp-executing workers stamp — a
        // worker that woke to an already-drained queue contributes
        // scheduler latency, not kernel work.
        if ran_warps {
            shared.end_nanos.fetch_max(shared.epoch.elapsed().as_nanos() as u64, Ordering::AcqRel);
        }
        if shared.done.fetch_add(1, Ordering::AcqRel) + 1 == workers {
            let _st = lock_pool(&shared.state);
            shared.done_cv.notify_all();
        }
    }
}

/// The persistent worker pool behind a [`Device`]: workers are spawned once
/// at device construction, park on a condvar between kernels, and are
/// released launch-by-launch through the staging barrier.
struct WorkerPool {
    workers: usize,
    shared: Arc<Shared>,
    /// Serialises concurrent launches on one device — the pool runs one
    /// kernel at a time, like a single CUDA stream.
    launch_gate: Mutex<()>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        assert!(workers >= 1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                gen: 0,
                job: None,
                n_warps: 0,
                chunk: 1,
                panic: None,
                shutdown: false,
            }),
            start_cv: Condvar::new(),
            done_cv: Condvar::new(),
            epoch: Instant::now(),
            next: AtomicU32::new(0),
            staged: AtomicUsize::new(0),
            release_gen: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            end_nanos: AtomicU64::new(0),
            // Spin only when the host can run launcher + workers at once;
            // otherwise the awaited thread needs this very core.
            spin_limit: if std::thread::available_parallelism().map_or(1, |n| n.get()) > workers {
                20_000
            } else {
                16
            },
            slots: (0..workers)
                .map(|_| WorkerSlot { warps: AtomicU32::new(0), claims: AtomicU32::new(0) })
                .collect(),
        });
        // A 1-worker device runs kernels inline on the calling thread (the
        // deterministic `GMS_WORKERS=1` mode) and needs no pool threads.
        let handles = if workers >= 2 {
            (0..workers)
                .map(|idx| {
                    let sh = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("gms-worker-{idx}"))
                        .spawn(move || worker_loop(sh, idx, workers))
                        .expect("spawn pool worker")
                })
                .collect()
        } else {
            Vec::new()
        };
        WorkerPool { workers, shared, launch_gate: Mutex::new(()), handles }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock_pool(&self.shared.state);
            st.shutdown = true;
            self.shared.start_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A simulated device: a [`DeviceSpec`] plus a persistent SM worker pool.
///
/// Each [`Device::launch`] call runs one kernel on the pool. Workers park
/// between kernels; the reported time covers the parallel section alone
/// (see the module docs for the barrier timing protocol). Dispatch cost is
/// still observable — it is reported separately as
/// [`SchedStats::dispatch`].
pub struct Device {
    spec: DeviceSpec,
    pool: WorkerPool,
    hook: Option<LaunchHook>,
    launch_seq: AtomicU64,
}

impl Device {
    /// Hard ceiling on the pool size. More OS workers than warps in a
    /// typical launch only adds barrier traffic without adding contention
    /// realism, so `GMS_WORKERS` requests beyond this are clamped.
    pub const MAX_WORKERS: usize = 64;

    /// A device with the default worker count: `GMS_WORKERS` env var if set
    /// (clamped to `1..=MAX_WORKERS`, logged once per process), otherwise
    /// `max(available_parallelism, 4)` capped at 16. A floor of 4 keeps
    /// atomic interleavings real even on small hosts.
    pub fn new(spec: DeviceSpec) -> Self {
        let workers = Self::configured_workers();
        if let Ok(raw) = std::env::var("GMS_WORKERS") {
            static LOGGED: std::sync::Once = std::sync::Once::new();
            LOGGED.call_once(|| {
                let parsed = parse_worker_request(&raw);
                match parsed {
                    Some(req) if req != workers => eprintln!(
                        "gpu-sim: GMS_WORKERS={raw} clamped to {workers} workers \
                         (allowed range 1..={})",
                        Self::MAX_WORKERS
                    ),
                    Some(_) => eprintln!("gpu-sim: worker pool size {workers} (GMS_WORKERS)"),
                    None => eprintln!(
                        "gpu-sim: ignoring unparsable GMS_WORKERS={raw}; \
                         using {workers} workers"
                    ),
                }
            });
        }
        Device { spec, pool: WorkerPool::new(workers), hook: None, launch_seq: AtomicU64::new(0) }
    }

    /// The worker count [`Device::new`] would use right now — the effective
    /// `GMS_WORKERS` after clamping, or the host default. Lets report
    /// headers name the worker config without constructing a device.
    pub fn configured_workers() -> usize {
        std::env::var("GMS_WORKERS")
            .ok()
            .and_then(|v| parse_worker_request(&v))
            .map(|w| w.clamp(1, Self::MAX_WORKERS))
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(4, |n| n.get()).clamp(4, 16)
            })
    }

    /// A device with an explicit worker count (`1..=MAX_WORKERS`).
    pub fn with_workers(spec: DeviceSpec, workers: usize) -> Self {
        assert!((1..=Self::MAX_WORKERS).contains(&workers));
        Device { spec, pool: WorkerPool::new(workers), hook: None, launch_seq: AtomicU64::new(0) }
    }

    /// Installs a launch-lifecycle callback, replacing any previous one.
    /// The hook fires around every pooled launch ([`LaunchPhase::Begin`] /
    /// [`LaunchPhase::End`]) — plain *and* observed variants — which is how
    /// the telemetry sampler aligns its windows to kernel boundaries
    /// (`repro watch` cuts a window at each `End`). See [`LaunchHook`] for
    /// the re-entrancy rule.
    pub fn set_launch_hook(&mut self, hook: LaunchHook) {
        self.hook = Some(hook);
    }

    /// Removes the launch-lifecycle callback, if any.
    pub fn clear_launch_hook(&mut self) {
        self.hook = None;
    }

    /// The device description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Number of OS workers in the pool.
    pub fn workers(&self) -> usize {
        self.pool.workers
    }

    /// Launches `n_threads` logical threads running `kernel`, one call per
    /// thread. Returns the wall-clock time of the parallel section.
    pub fn launch<F>(&self, n_threads: u32, kernel: F) -> Duration
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        self.launch_with_stats(n_threads, kernel).0
    }

    /// As [`Device::launch`], additionally returning the scheduler stats of
    /// the launch (dispatch overhead, per-worker warp counts, steals).
    pub fn launch_with_stats<F>(&self, n_threads: u32, kernel: F) -> (Duration, SchedStats)
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        let n_warps = n_threads.div_ceil(WARP_SIZE);
        let block_size = self.spec.default_block_size;
        let num_sms = self.spec.num_sms;
        self.run_warps(n_warps, |warp_id| {
            let first = warp_id * WARP_SIZE;
            let last = (first + WARP_SIZE).min(n_threads);
            for tid in first..last {
                let ctx = ThreadCtx::from_linear(tid, block_size, num_sms);
                kernel(&ctx);
            }
        })
    }

    /// As [`Device::launch`], additionally snapshotting `metrics` around the
    /// parallel section so the caller gets the per-kernel counter delta.
    ///
    /// The launch gate is taken *before* the first snapshot and held until
    /// the second, so concurrent observed launches on this device sharing
    /// one `Metrics` handle serialise and each report's delta covers
    /// exactly its own launch. (Launches on *different* `Device` instances
    /// sharing a handle still interleave — give each device its own handle
    /// and [`CounterSnapshot::merge`] the deltas.) When the handle carries
    /// a tracer, launch and warp lifecycle events are recorded too.
    pub fn launch_observed<F>(&self, metrics: &Metrics, n_threads: u32, kernel: F) -> LaunchReport
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        let n_warps = n_threads.div_ceil(WARP_SIZE);
        let block_size = self.spec.default_block_size;
        let num_sms = self.spec.num_sms;
        let body = |warp_id: u32| {
            let first = warp_id * WARP_SIZE;
            let last = (first + WARP_SIZE).min(n_threads);
            for tid in first..last {
                let ctx = ThreadCtx::from_linear(tid, block_size, num_sms);
                kernel(&ctx);
            }
        };
        let sm_of =
            |warp_id: u32| ThreadCtx::from_linear(warp_id * WARP_SIZE, block_size, num_sms).sm;
        self.observed_run(metrics, n_warps, n_threads as u64, &body, &sm_of)
    }

    /// As [`Device::launch_warps`], with the counter snapshotting (and
    /// per-launch delta scoping) of [`Device::launch_observed`].
    pub fn launch_warps_observed<F>(
        &self,
        metrics: &Metrics,
        n_warps: u32,
        kernel: F,
    ) -> LaunchReport
    where
        F: Fn(&WarpCtx) + Sync,
    {
        let block_size = self.spec.default_block_size;
        let num_sms = self.spec.num_sms;
        let warps_per_block = (block_size / WARP_SIZE).max(1);
        let body = |warp_id: u32| {
            let block = warp_id / warps_per_block;
            let ctx = WarpCtx { warp: warp_id, block, sm: block % num_sms };
            kernel(&ctx);
        };
        let sm_of = |warp_id: u32| (warp_id / warps_per_block) % num_sms;
        self.observed_run(
            metrics,
            n_warps,
            u64::from(n_warps) * u64::from(WARP_SIZE),
            &body,
            &sm_of,
        )
    }

    /// Shared implementation of the observed launches: gate, snapshot, run,
    /// snapshot. Holding the launch gate across both snapshots is what makes
    /// the delta per-launch — before this, two concurrent observed launches
    /// would each read the other's counter traffic into its delta. With a
    /// tracer attached, emits `LaunchBegin`/`LaunchEnd` (on shard 0) and
    /// per-warp `WarpDispatched`/`WarpRetired` events.
    fn observed_run(
        &self,
        metrics: &Metrics,
        n_warps: u32,
        n_threads: u64,
        body: &(dyn Fn(u32) + Sync),
        sm_of_warp: &(dyn Fn(u32) -> u32 + Sync),
    ) -> LaunchReport {
        let _gate = lock_pool(&self.pool.launch_gate);
        if let Some(rec) = metrics.tracer() {
            let launch_id = rec.next_launch_id();
            rec.emit(0, EventKind::LaunchBegin, [launch_id, n_threads, u64::from(n_warps), 0]);
            let traced = |warp_id: u32| {
                let sm = sm_of_warp(warp_id);
                rec.emit(sm, EventKind::WarpDispatched, [u64::from(warp_id), launch_id, 0, 0]);
                body(warp_id);
                rec.emit(sm, EventKind::WarpRetired, [u64::from(warp_id), launch_id, 0, 0]);
            };
            let before = metrics.snapshot();
            // memlint: allow(lock-across-launch-gate) — the gate is the outermost whole-grid serialisation by design; pool state is strictly interior and never taken in the reverse order
            let (elapsed, sched) = self.run_warps_locked(n_warps, &traced);
            let counters = metrics.snapshot().delta_since(&before);
            rec.emit(0, EventKind::LaunchEnd, [launch_id, elapsed.as_nanos() as u64, 0, 0]);
            LaunchReport { elapsed, counters, sched }
        } else {
            let before = metrics.snapshot();
            // memlint: allow(lock-across-launch-gate) — the gate is the outermost whole-grid serialisation by design; pool state is strictly interior and never taken in the reverse order
            let (elapsed, sched) = self.run_warps_locked(n_warps, body);
            LaunchReport { elapsed, counters: metrics.snapshot().delta_since(&before), sched }
        }
    }

    /// Launches `n_warps` warps running a *warp-collective* kernel, one call
    /// per warp. This drives the warp-based test cases (Fig. 9g) and any
    /// allocator's `malloc_warp` path.
    pub fn launch_warps<F>(&self, n_warps: u32, kernel: F) -> Duration
    where
        F: Fn(&WarpCtx) + Sync,
    {
        self.launch_warps_with_stats(n_warps, kernel).0
    }

    /// As [`Device::launch_warps`], additionally returning scheduler stats.
    pub fn launch_warps_with_stats<F>(&self, n_warps: u32, kernel: F) -> (Duration, SchedStats)
    where
        F: Fn(&WarpCtx) + Sync,
    {
        let block_size = self.spec.default_block_size;
        let num_sms = self.spec.num_sms;
        let warps_per_block = (block_size / WARP_SIZE).max(1);
        self.run_warps(n_warps, |warp_id| {
            let block = warp_id / warps_per_block;
            let ctx = WarpCtx { warp: warp_id, block, sm: block % num_sms };
            kernel(&ctx);
        })
    }

    /// Shared scheduling entry: takes the launch gate (launches on one
    /// device are serialised, pooled *and* inline — the gate is taken
    /// before any clock starts, so waiting launches are not charged), then
    /// dispatches via [`Device::run_warps_locked`].
    fn run_warps<F>(&self, n_warps: u32, body: F) -> (Duration, SchedStats)
    where
        F: Fn(u32) + Sync,
    {
        let _gate = lock_pool(&self.pool.launch_gate);
        // memlint: allow(lock-across-launch-gate) — the gate is the outermost whole-grid serialisation by design; pool state is strictly interior and never taken in the reverse order
        self.run_warps_locked(n_warps, &body)
    }

    /// Dispatches `n_warps` warps onto the pool (or runs inline for a
    /// 1-worker device) and reports the parallel section's duration plus
    /// scheduler stats. Caller must hold the launch gate. Every pooled
    /// launch funnels through here, so this is also where the
    /// [`LaunchHook`] fires — `Begin` before dispatch, `End` after the
    /// grid retires, outside the timed section on both sides.
    fn run_warps_locked(
        &self,
        n_warps: u32,
        body: &(dyn Fn(u32) + Sync),
    ) -> (Duration, SchedStats) {
        let Some(hook) = &self.hook else {
            return self.dispatch_warps(n_warps, body);
        };
        let seq = self.launch_seq.fetch_add(1, Ordering::Relaxed);
        hook(LaunchPhase::Begin { seq, n_warps });
        let (elapsed, sched) = self.dispatch_warps(n_warps, body);
        hook(LaunchPhase::End { seq, n_warps, elapsed });
        (elapsed, sched)
    }

    /// The hook-free core of [`Device::run_warps_locked`].
    fn dispatch_warps(&self, n_warps: u32, body: &(dyn Fn(u32) + Sync)) -> (Duration, SchedStats) {
        let workers = self.pool.workers;
        if n_warps == 0 {
            return (Duration::ZERO, SchedStats { workers, ..SchedStats::default() });
        }
        if workers == 1 {
            // Inline: deterministic sequential order, no hand-off at all.
            let start = Instant::now();
            for w in 0..n_warps {
                body(w);
            }
            let elapsed = start.elapsed();
            let sched = SchedStats {
                dispatch: Duration::ZERO,
                workers: 1,
                chunk: n_warps,
                warps_per_worker: vec![n_warps],
                steals: 0,
            };
            return (elapsed, sched);
        }
        self.run_pooled(n_warps, body)
    }

    /// The pooled launch protocol (see module docs): reset per-launch
    /// state, publish the job, stage every worker, start the clock, release
    /// the barrier, and collect the end stamp the last retiring worker
    /// leaves behind.
    fn run_pooled(&self, n_warps: u32, body: &(dyn Fn(u32) + Sync)) -> (Duration, SchedStats) {
        let pool = &self.pool;
        let shared = &*pool.shared;
        let t0 = Instant::now();
        let chunk = chunk_for(n_warps, pool.workers);

        // Reset per-launch state. Safe relaxed: the gen bump below (under
        // the state mutex) orders these writes before any worker reads.
        shared.next.store(0, Ordering::Relaxed);
        shared.staged.store(0, Ordering::Relaxed);
        shared.done.store(0, Ordering::Relaxed);
        shared.end_nanos.store(0, Ordering::Relaxed);
        for slot in &shared.slots {
            slot.warps.store(0, Ordering::Relaxed);
            slot.claims.store(0, Ordering::Relaxed);
        }

        // SAFETY: lifetime erasure only — the launch protocol guarantees no
        // worker touches the pointer after `done` reaches the pool size,
        // and this function does not return before that (JobPtr docs).
        let erased = JobPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(u32) + Sync), &'static (dyn Fn(u32) + Sync)>(body)
        });
        let gen = {
            let mut st = lock_pool(&shared.state);
            st.gen += 1;
            st.job = Some(erased);
            st.n_warps = n_warps;
            st.chunk = chunk;
            st.panic = None;
            shared.start_cv.notify_all();
            st.gen
        };

        // Stage: every worker must hold at the barrier before the clock
        // starts, so wake-up latency lands in `dispatch`, not kernel time.
        let mut spins = 0u32;
        while shared.staged.load(Ordering::Acquire) != pool.workers {
            spin_or_yield(&mut spins, shared.spin_limit);
        }
        let dispatch = t0.elapsed();
        let start_nanos = shared.epoch.elapsed().as_nanos() as u64;
        shared.release_gen.store(gen, Ordering::Release);

        // Wait until the last warp retires.
        let panic_payload = {
            let mut st = lock_pool(&shared.state);
            while shared.done.load(Ordering::Acquire) < pool.workers {
                st = wait_pool(&shared.done_cv, st);
            }
            st.job = None;
            st.panic.take()
        };
        let end_nanos = shared.end_nanos.load(Ordering::Acquire);
        if let Some(p) = panic_payload {
            panic::resume_unwind(p);
        }
        let warps_per_worker: Vec<u32> =
            shared.slots.iter().map(|s| s.warps.load(Ordering::Relaxed)).collect();
        let steals: u64 = shared
            .slots
            .iter()
            .map(|s| s.claims.load(Ordering::Relaxed))
            .filter(|&c| c > 0)
            .map(|c| u64::from(c - 1))
            .sum();
        let elapsed = Duration::from_nanos(end_nanos.saturating_sub(start_nanos));
        (elapsed, SchedStats { dispatch, workers: pool.workers, chunk, warps_per_worker, steals })
    }

    /// The pre-pool executor, kept verbatim as the measurement baseline:
    /// spawns scoped OS threads per launch with the old fixed claim chunk
    /// of 16 and times spawn + drain + join together. Used by the
    /// launch-overhead microbenchmark (`repro exec-bench`) and the
    /// timing-fidelity test; kernel numbers must come from
    /// [`Device::launch`].
    pub fn spawn_launch<F>(&self, n_threads: u32, kernel: F) -> Duration
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        if n_threads == 0 {
            return Duration::ZERO;
        }
        let n_warps = n_threads.div_ceil(WARP_SIZE);
        let block_size = self.spec.default_block_size;
        let num_sms = self.spec.num_sms;
        let body = |warp_id: u32| {
            let first = warp_id * WARP_SIZE;
            let last = (first + WARP_SIZE).min(n_threads);
            for tid in first..last {
                let ctx = ThreadCtx::from_linear(tid, block_size, num_sms);
                kernel(&ctx);
            }
        };
        let next = AtomicU32::new(0);
        let start = Instant::now();
        if self.pool.workers == 1 {
            for w in 0..n_warps {
                body(w);
            }
            return start.elapsed();
        }
        std::thread::scope(|scope| {
            for _ in 0..self.pool.workers {
                scope.spawn(|| loop {
                    let first = next.fetch_add(MAX_CLAIM_CHUNK, Ordering::Relaxed);
                    if first >= n_warps {
                        break;
                    }
                    let last = first.saturating_add(MAX_CLAIM_CHUNK).min(n_warps);
                    for w in first..last {
                        body(w);
                    }
                });
            }
        });
        start.elapsed()
    }
}

/// Parses a `GMS_WORKERS` value: a positive integer, anything else is
/// ignored (the caller falls back to the host default).
fn parse_worker_request(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&w| w >= 1)
}

/// One output slot per logical thread, writable from inside a kernel.
///
/// Kernels frequently need "each thread stores its pointer": slot `i` may be
/// written only by the thread whose `thread_id == i` (or, for warp kernels,
/// by the warp that owns lane-range `i`). That exclusivity is the safety
/// contract; it mirrors how the CUDA test kernels write `ptrs[threadIdx]`.
pub struct PerThread<T> {
    // memlint: allow(shared-unsafe-cell) — each worker writes only its own slot; the launcher reads after the done-barrier Acquire.
    slots: Box<[UnsafeCell<T>]>,
}

// SAFETY: distinct threads access distinct slots (type contract above).
unsafe impl<T: Send> Sync for PerThread<T> {}

impl<T: Default> PerThread<T> {
    /// `n` default-initialised slots.
    pub fn new(n: usize) -> Self {
        let slots: Box<[UnsafeCell<T>]> = (0..n).map(|_| UnsafeCell::new(T::default())).collect();
        PerThread { slots }
    }
}

impl<T> PerThread<T> {
    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Writes slot `i`.
    ///
    /// Contract: during a launch, each slot is written by exactly one logical
    /// thread (the one it belongs to). Violations are a logic bug in the
    /// calling kernel, not detectable here.
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        // SAFETY: unique writer per slot (type contract).
        unsafe { *self.slots[i].get() = v }
    }

    /// Reads slot `i` via a mutable borrow (host-side, after the launch).
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        self.slots[i].get_mut()
    }

    /// Reads slot `i` from inside a kernel. Only sound for slots the calling
    /// thread owns (e.g. reading back a pointer it stored earlier in the same
    /// or an earlier launch).
    #[inline]
    pub fn get(&self, i: usize) -> &T {
        // SAFETY: slot is not being mutated concurrently (owner-only access).
        unsafe { &*self.slots[i].get() }
    }

    /// Consumes the buffer into a plain vector (host-side reduction).
    pub fn into_vec(self) -> Vec<T> {
        self.slots.into_vec().into_iter().map(UnsafeCell::into_inner).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_core::sync::AtomicU64;

    fn device() -> Device {
        Device::with_workers(DeviceSpec::titan_v(), 4)
    }

    #[test]
    fn launch_runs_every_thread_exactly_once() {
        let d = device();
        let n = 10_000u32;
        let hits = PerThread::<u32>::new(n as usize);
        d.launch(n, |ctx| {
            hits.set(ctx.thread_id as usize, hits.get(ctx.thread_id as usize) + 1);
        });
        let v = hits.into_vec();
        assert!(v.iter().all(|&h| h == 1), "some thread ran != 1 times");
    }

    #[test]
    fn launch_zero_threads_is_noop() {
        let d = device();
        assert_eq!(d.launch(0, |_| panic!("must not run")), Duration::ZERO);
    }

    #[test]
    fn partial_tail_warp() {
        let d = device();
        let n = 33u32; // one full warp + 1 lane
        let count = AtomicU64::new(0);
        d.launch(n, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 33);
    }

    #[test]
    fn thread_ctx_coordinates_are_consistent() {
        let d = device();
        d.launch(4096, |ctx| {
            assert_eq!(ctx.warp, ctx.thread_id / 32);
            assert_eq!(ctx.lane, ctx.thread_id % 32);
            assert_eq!(ctx.block, ctx.thread_id / 256);
            assert!(ctx.sm < 80);
        });
    }

    #[test]
    fn launch_warps_runs_each_warp_once() {
        let d = device();
        let n_warps = 500u32;
        let hits = PerThread::<u32>::new(n_warps as usize);
        d.launch_warps(n_warps, |w| {
            hits.set(w.warp as usize, hits.get(w.warp as usize) + 1);
        });
        assert!(hits.into_vec().iter().all(|&h| h == 1));
    }

    #[test]
    fn warp_sm_assignment_spreads_over_sms() {
        let d = device();
        let sms = std::sync::Mutex::new(std::collections::HashSet::new());
        d.launch_warps(8 * 100, |w| {
            sms.lock().unwrap().insert(w.sm);
        });
        // 800 warps in blocks of 8 warps → 100 blocks → 80 SMs all covered.
        assert_eq!(sms.into_inner().unwrap().len(), 80);
    }

    #[test]
    fn single_worker_device_runs_inline() {
        let d = Device::with_workers(DeviceSpec::rtx_2080ti(), 1);
        let count = AtomicU64::new(0);
        d.launch(1000, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn per_thread_into_vec_roundtrip() {
        let p = PerThread::<u64>::new(8);
        for i in 0..8 {
            p.set(i, (i * i) as u64);
        }
        assert_eq!(p.into_vec(), vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn timing_is_monotonically_positive() {
        let d = device();
        let t = d.launch(50_000, |ctx| {
            std::hint::black_box(ctx.scatter_hash());
        });
        assert!(t > Duration::ZERO);
    }

    #[test]
    fn adaptive_chunk_shrinks_with_launch() {
        // A 16-warp launch on 4 workers used to run serially on one worker
        // (fixed chunk 16); the adaptive chunk spreads it.
        assert_eq!(chunk_for(16, 4), 1);
        assert_eq!(chunk_for(128, 16), 2);
        assert_eq!(chunk_for(1 << 20, 4), MAX_CLAIM_CHUNK);
        assert_eq!(chunk_for(1, 16), 1);
        assert_eq!(chunk_for(4, 4), 1);
    }

    #[test]
    fn small_launch_spreads_across_workers() {
        // Regression for the small-launch serialization bug: n_warps ==
        // workers, every warp parks on a barrier sized to the launch. The
        // kernel completes only if each warp runs on its own worker; the
        // old fixed CLAIM_CHUNK=16 put all 4 warps on one worker and this
        // deadlocked.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let d = device();
            let barrier = std::sync::Barrier::new(4);
            let (_, sched) = d.launch_warps_with_stats(4, |_w| {
                barrier.wait();
            });
            tx.send(sched).unwrap();
        });
        let sched = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("launch of `workers` warps serialized on one worker (deadlock)");
        assert_eq!(sched.workers_used(), 4, "per-worker warps: {:?}", sched.warps_per_worker);
        assert_eq!(sched.warps_per_worker.iter().sum::<u32>(), 4);
        assert_eq!(sched.chunk, 1);
    }

    #[test]
    fn mid_launch_feeds_more_workers_than_old_chunking() {
        // 128 warps on 16 workers: the fixed chunk of 16 capped usage at 8
        // workers; adaptive chunking (chunk 2) feeds the whole pool. Each
        // warp works long enough that all workers claim before the queue
        // drains.
        let d = Device::with_workers(DeviceSpec::titan_v(), 16);
        let (_, sched) = d.launch_warps_with_stats(128, |_| {
            std::thread::sleep(Duration::from_micros(100));
        });
        assert!(
            sched.workers_used() > 8,
            "adaptive chunking should beat the old 8-worker cap: {:?}",
            sched.warps_per_worker
        );
    }

    #[test]
    fn sched_stats_account_every_warp() {
        let d = device();
        let (_, sched) = d.launch_with_stats(10_000, |_| {});
        assert_eq!(sched.workers, 4);
        assert_eq!(sched.warps_per_worker.len(), 4);
        assert_eq!(sched.warps_per_worker.iter().sum::<u32>(), 10_000u32.div_ceil(WARP_SIZE));
        // 313 warps / (4 workers × 4 target claims) → capped at the max.
        assert_eq!(sched.chunk, chunk_for(10_000u32.div_ceil(WARP_SIZE), 4));
    }

    #[test]
    fn kernel_panic_propagates_and_pool_survives() {
        let d = device();
        let boom = panic::catch_unwind(AssertUnwindSafe(|| {
            d.launch(64, |ctx| {
                assert!(ctx.thread_id != 63, "boom");
            });
        }));
        assert!(boom.is_err(), "kernel panic must reach the launcher");
        // The pool must stay usable for the next launch.
        let count = AtomicU64::new(0);
        d.launch(1000, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn miri_smoke_perthread_barrier_handoff() {
        // Small, allocation-light hand-off exercise intended to stay
        // miri-clean: repeated launches re-use the parked pool and write
        // disjoint PerThread slots across the barrier.
        let d = Device::with_workers(DeviceSpec::titan_v(), 2);
        let out = PerThread::<u32>::new(64);
        for round in 0..3u32 {
            d.launch(64, |ctx| out.set(ctx.thread_id as usize, ctx.thread_id * 2 + round));
        }
        let v = out.into_vec();
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x as usize, i * 2 + 2);
        }
    }

    #[test]
    fn worker_request_parsing_and_clamping() {
        assert_eq!(parse_worker_request("8"), Some(8));
        assert_eq!(parse_worker_request(" 12 "), Some(12));
        assert_eq!(parse_worker_request("0"), None);
        assert_eq!(parse_worker_request("lots"), None);
        // Oversized requests clamp to the ceiling instead of building a
        // 1000-thread pool that can never all be fed.
        assert_eq!(parse_worker_request("1000").unwrap().clamp(1, Device::MAX_WORKERS), 64);
    }

    #[test]
    fn spawn_reference_still_runs_every_thread() {
        let d = device();
        let count = AtomicU64::new(0);
        let t = d.spawn_launch(1234, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1234);
        assert!(t > Duration::ZERO);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "timing ratio; release-only (scripts/check.sh)")]
    fn pooled_dispatch_beats_spawn_per_launch() {
        // Timing fidelity: the *reported* latency of an empty-kernel launch
        // on the pooled executor must be < 10% of what the old
        // spawn-per-launch path reports for the identical kernel —
        // otherwise the harness is again charging thread administration to
        // kernel time. Minima over many trials filter scheduler noise.
        let d = device();
        let n = 4 * WARP_SIZE; // one warp per worker
        let mut pooled = Duration::MAX;
        for _ in 0..400 {
            pooled = pooled.min(d.launch(n, |_| {}));
        }
        let mut spawn = Duration::MAX;
        for _ in 0..60 {
            spawn = spawn.min(d.spawn_launch(n, |_| {}));
        }
        assert!(
            pooled * 10 <= spawn,
            "pooled kernel time {pooled:?} is not <10% of spawn-per-launch {spawn:?}"
        );
    }
}

/// Model-checked interleaving suite (built with `RUSTFLAGS="--cfg loom"`).
///
/// The worker pool itself is persistent OS infrastructure (condvars, a
/// long-lived thread set), so the models check a *distilled* replica of the
/// launch handoff — the same atomics with the same orderings as
/// `run_pooled`/`worker_loop`: per-launch `next`/`staged`/`done` resets
/// (Relaxed), the generation publish (the state-mutex edge, distilled to a
/// Release store / Acquire spin), the stage barrier (`staged` AcqRel +
/// Acquire spin), the release (`release_gen` Release store / Acquire spin),
/// Relaxed warp claims on `next`, and retirement (`done` AcqRel + Acquire
/// spin). The invariant in every schedule: each warp of each generation
/// executes exactly once, even though the claim counter itself is Relaxed.
#[cfg(all(test, loom))]
mod loom_tests {
    use gpumem_core::sync::{hint, model, thread, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;

    const WORKERS: usize = 2;
    const WARPS: u32 = 3;

    #[derive(Default)]
    struct Handoff {
        /// Stand-in for the state-mutex gen publish (`st.gen += 1`).
        published: AtomicU64,
        staged: AtomicUsize,
        release_gen: AtomicU64,
        next: AtomicU32,
        done: AtomicUsize,
        /// Execution counts, `[gen-1][warp]` flattened.
        executed: [AtomicU32; 2 * WARPS as usize],
    }

    fn worker(h: &Handoff, gens: u64) {
        for gen in 1..=gens {
            while h.published.load(Ordering::Acquire) < gen {
                hint::spin_loop();
            }
            h.staged.fetch_add(1, Ordering::AcqRel);
            while h.release_gen.load(Ordering::Acquire) != gen {
                hint::spin_loop();
            }
            loop {
                let first = h.next.fetch_add(1, Ordering::Relaxed);
                if first >= WARPS {
                    break;
                }
                h.executed[(gen as usize - 1) * WARPS as usize + first as usize]
                    .fetch_add(1, Ordering::Relaxed);
            }
            h.done.fetch_add(1, Ordering::AcqRel);
        }
    }

    fn launch(h: &Handoff, gen: u64) {
        // Per-launch resets are Relaxed on purpose: the publish below is
        // the ordering edge (exec.rs `run_pooled` does this under the
        // state mutex; the model uses the equivalent Release/Acquire pair).
        h.next.store(0, Ordering::Relaxed);
        h.staged.store(0, Ordering::Relaxed);
        h.done.store(0, Ordering::Relaxed);
        h.published.store(gen, Ordering::Release);
        while h.staged.load(Ordering::Acquire) != WORKERS {
            hint::spin_loop();
        }
        h.release_gen.store(gen, Ordering::Release);
        while h.done.load(Ordering::Acquire) < WORKERS {
            hint::spin_loop();
        }
    }

    fn check_gen(h: &Handoff, gen: u64) {
        for w in 0..WARPS as usize {
            let n = h.executed[(gen as usize - 1) * WARPS as usize + w].load(Ordering::Acquire);
            assert_eq!(n, 1, "gen {gen} warp {w} executed {n} times");
        }
    }

    /// One launch: the stage barrier + release fully hand 3 warps to 2
    /// workers, each executed exactly once despite the Relaxed claims.
    #[test]
    fn single_launch_executes_each_warp_once() {
        model(|| {
            let h = Arc::new(Handoff::default());
            let spawn_worker = || {
                let h = h.clone();
                thread::spawn(move || worker(&h, 1))
            };
            let w1 = spawn_worker();
            let w2 = spawn_worker();
            launch(&h, 1);
            check_gen(&h, 1);
            w1.join().unwrap();
            w2.join().unwrap();
        });
    }

    /// Two back-to-back launches over the same (persistent) workers: the
    /// Relaxed per-launch resets must never leak into a generation — no
    /// schedule lets a worker of generation 2 observe generation 1's spent
    /// `next` counter or vice versa.
    #[test]
    fn generation_reuse_never_leaks_state() {
        model(|| {
            let h = Arc::new(Handoff::default());
            let spawn_worker = || {
                let h = h.clone();
                thread::spawn(move || worker(&h, 2))
            };
            let w1 = spawn_worker();
            let w2 = spawn_worker();
            launch(&h, 1);
            check_gen(&h, 1);
            launch(&h, 2);
            check_gen(&h, 2);
            w1.join().unwrap();
            w2.join().unwrap();
        });
    }
}
