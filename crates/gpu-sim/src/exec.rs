//! The kernel executor: schedules logical GPU threads onto OS workers.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use gpumem_core::{CounterSnapshot, Metrics, ThreadCtx, WarpCtx, WARP_SIZE};

use crate::spec::DeviceSpec;

/// Outcome of an observed launch: kernel wall-clock time plus the
/// contention-counter activity attributable to that launch (the delta of
/// the allocator's [`Metrics`] over the parallel section).
#[derive(Clone, Debug, Default)]
pub struct LaunchReport {
    /// Wall-clock time of the parallel section.
    pub elapsed: Duration,
    /// Counter deltas accumulated during the launch. All-zero when the
    /// allocator's metrics are disabled.
    pub counters: CounterSnapshot,
}

/// How many warps a worker claims from the queue at a time. Large enough to
/// keep the claim counter cold, small enough that tail imbalance stays low.
const CLAIM_CHUNK: u32 = 16;

/// A simulated device: a [`DeviceSpec`] plus a worker pool size.
///
/// Each [`Device::launch`] call runs one kernel: it spawns the workers
/// (scoped threads), lets them drain the warp queue, and returns the
/// wall-clock duration of the parallel section — the "kernel time" every
/// benchmark records. Spawning per launch mirrors per-kernel launch overhead
/// and keeps the executor stateless.
pub struct Device {
    spec: DeviceSpec,
    workers: usize,
}

impl Device {
    /// A device with the default worker count: `GMS_WORKERS` env var if set,
    /// otherwise `max(available_parallelism, 4)` capped at 16. A floor of 4
    /// keeps atomic interleavings real even on small hosts.
    pub fn new(spec: DeviceSpec) -> Self {
        let workers = std::env::var("GMS_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(4, |n| n.get()).clamp(4, 16)
            });
        Device { spec, workers }
    }

    /// A device with an explicit worker count (≥ 1).
    pub fn with_workers(spec: DeviceSpec, workers: usize) -> Self {
        assert!(workers >= 1);
        Device { spec, workers }
    }

    /// The device description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Number of OS workers a launch uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Launches `n_threads` logical threads running `kernel`, one call per
    /// thread. Returns the wall-clock time of the parallel section.
    pub fn launch<F>(&self, n_threads: u32, kernel: F) -> Duration
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        if n_threads == 0 {
            return Duration::ZERO;
        }
        let n_warps = n_threads.div_ceil(WARP_SIZE);
        let block_size = self.spec.default_block_size;
        let num_sms = self.spec.num_sms;
        self.run_warps(n_warps, |warp_id| {
            let first = warp_id * WARP_SIZE;
            let last = (first + WARP_SIZE).min(n_threads);
            for tid in first..last {
                let ctx = ThreadCtx::from_linear(tid, block_size, num_sms);
                kernel(&ctx);
            }
        })
    }

    /// As [`Device::launch`], additionally snapshotting `metrics` around the
    /// parallel section so the caller gets the per-kernel counter delta.
    /// Snapshots are monotone, so concurrent launches sharing one handle
    /// each observe a (superset-)delta of their own activity.
    pub fn launch_observed<F>(&self, metrics: &Metrics, n_threads: u32, kernel: F) -> LaunchReport
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        let before = metrics.snapshot();
        let elapsed = self.launch(n_threads, kernel);
        LaunchReport { elapsed, counters: metrics.snapshot().delta_since(&before) }
    }

    /// As [`Device::launch_warps`], with the counter snapshotting of
    /// [`Device::launch_observed`].
    pub fn launch_warps_observed<F>(
        &self,
        metrics: &Metrics,
        n_warps: u32,
        kernel: F,
    ) -> LaunchReport
    where
        F: Fn(&WarpCtx) + Sync,
    {
        let before = metrics.snapshot();
        let elapsed = self.launch_warps(n_warps, kernel);
        LaunchReport { elapsed, counters: metrics.snapshot().delta_since(&before) }
    }

    /// Launches `n_warps` warps running a *warp-collective* kernel, one call
    /// per warp. This drives the warp-based test cases (Fig. 9g) and any
    /// allocator's `malloc_warp` path.
    pub fn launch_warps<F>(&self, n_warps: u32, kernel: F) -> Duration
    where
        F: Fn(&WarpCtx) + Sync,
    {
        if n_warps == 0 {
            return Duration::ZERO;
        }
        let block_size = self.spec.default_block_size;
        let num_sms = self.spec.num_sms;
        let warps_per_block = (block_size / WARP_SIZE).max(1);
        self.run_warps(n_warps, |warp_id| {
            let block = warp_id / warps_per_block;
            let ctx = WarpCtx { warp: warp_id, block, sm: block % num_sms };
            kernel(&ctx);
        })
    }

    /// Shared scheduling loop: workers claim chunks of warp ids until the
    /// queue is drained.
    fn run_warps<F>(&self, n_warps: u32, body: F) -> Duration
    where
        F: Fn(u32) + Sync,
    {
        let next = AtomicU32::new(0);
        let start = Instant::now();
        if self.workers == 1 {
            for w in 0..n_warps {
                body(w);
            }
            return start.elapsed();
        }
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| loop {
                    let first = next.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                    if first >= n_warps {
                        break;
                    }
                    let last = (first + CLAIM_CHUNK).min(n_warps);
                    for w in first..last {
                        body(w);
                    }
                });
            }
        });
        start.elapsed()
    }
}

/// One output slot per logical thread, writable from inside a kernel.
///
/// Kernels frequently need "each thread stores its pointer": slot `i` may be
/// written only by the thread whose `thread_id == i` (or, for warp kernels,
/// by the warp that owns lane-range `i`). That exclusivity is the safety
/// contract; it mirrors how the CUDA test kernels write `ptrs[threadIdx]`.
pub struct PerThread<T> {
    slots: Box<[UnsafeCell<T>]>,
}

// SAFETY: distinct threads access distinct slots (type contract above).
unsafe impl<T: Send> Sync for PerThread<T> {}

impl<T: Default> PerThread<T> {
    /// `n` default-initialised slots.
    pub fn new(n: usize) -> Self {
        let slots: Box<[UnsafeCell<T>]> = (0..n).map(|_| UnsafeCell::new(T::default())).collect();
        PerThread { slots }
    }
}

impl<T> PerThread<T> {
    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Writes slot `i`.
    ///
    /// Contract: during a launch, each slot is written by exactly one logical
    /// thread (the one it belongs to). Violations are a logic bug in the
    /// calling kernel, not detectable here.
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        // SAFETY: unique writer per slot (type contract).
        unsafe { *self.slots[i].get() = v }
    }

    /// Reads slot `i` via a mutable borrow (host-side, after the launch).
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        self.slots[i].get_mut()
    }

    /// Reads slot `i` from inside a kernel. Only sound for slots the calling
    /// thread owns (e.g. reading back a pointer it stored earlier in the same
    /// or an earlier launch).
    #[inline]
    pub fn get(&self, i: usize) -> &T {
        // SAFETY: slot is not being mutated concurrently (owner-only access).
        unsafe { &*self.slots[i].get() }
    }

    /// Consumes the buffer into a plain vector (host-side reduction).
    pub fn into_vec(self) -> Vec<T> {
        self.slots.into_vec().into_iter().map(UnsafeCell::into_inner).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn device() -> Device {
        Device::with_workers(DeviceSpec::titan_v(), 4)
    }

    #[test]
    fn launch_runs_every_thread_exactly_once() {
        let d = device();
        let n = 10_000u32;
        let hits = PerThread::<u32>::new(n as usize);
        d.launch(n, |ctx| {
            hits.set(ctx.thread_id as usize, hits.get(ctx.thread_id as usize) + 1);
        });
        let v = hits.into_vec();
        assert!(v.iter().all(|&h| h == 1), "some thread ran != 1 times");
    }

    #[test]
    fn launch_zero_threads_is_noop() {
        let d = device();
        assert_eq!(d.launch(0, |_| panic!("must not run")), Duration::ZERO);
    }

    #[test]
    fn partial_tail_warp() {
        let d = device();
        let n = 33u32; // one full warp + 1 lane
        let count = AtomicU64::new(0);
        d.launch(n, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 33);
    }

    #[test]
    fn thread_ctx_coordinates_are_consistent() {
        let d = device();
        d.launch(4096, |ctx| {
            assert_eq!(ctx.warp, ctx.thread_id / 32);
            assert_eq!(ctx.lane, ctx.thread_id % 32);
            assert_eq!(ctx.block, ctx.thread_id / 256);
            assert!(ctx.sm < 80);
        });
    }

    #[test]
    fn launch_warps_runs_each_warp_once() {
        let d = device();
        let n_warps = 500u32;
        let hits = PerThread::<u32>::new(n_warps as usize);
        d.launch_warps(n_warps, |w| {
            hits.set(w.warp as usize, hits.get(w.warp as usize) + 1);
        });
        assert!(hits.into_vec().iter().all(|&h| h == 1));
    }

    #[test]
    fn warp_sm_assignment_spreads_over_sms() {
        let d = device();
        let sms = std::sync::Mutex::new(std::collections::HashSet::new());
        d.launch_warps(8 * 100, |w| {
            sms.lock().unwrap().insert(w.sm);
        });
        // 800 warps in blocks of 8 warps → 100 blocks → 80 SMs all covered.
        assert_eq!(sms.into_inner().unwrap().len(), 80);
    }

    #[test]
    fn single_worker_device_runs_inline() {
        let d = Device::with_workers(DeviceSpec::rtx_2080ti(), 1);
        let count = AtomicU64::new(0);
        d.launch(1000, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn per_thread_into_vec_roundtrip() {
        let p = PerThread::<u64>::new(8);
        for i in 0..8 {
            p.set(i, (i * i) as u64);
        }
        assert_eq!(p.into_vec(), vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn timing_is_monotonically_positive() {
        let d = device();
        let t = d.launch(50_000, |ctx| {
            std::hint::black_box(ctx.scatter_hash());
        });
        assert!(t > Duration::ZERO);
    }
}
