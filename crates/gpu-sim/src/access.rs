//! Memory-access (coalescing) cost model — the substrate for the paper's
//! write-performance test case (§4.4.2, Figure 11e).
//!
//! On the evaluated GPUs, a warp's global-memory instruction is serviced in
//! 128-byte segments: the hardware coalesces the 32 lane addresses and issues
//! one transaction per *distinct* segment touched. An allocator that returns
//! well-packed, aligned, warp-local memory therefore costs as little as
//! `size/4` transactions per 4-byte-stride sweep, while scattered or
//! misaligned allocations cost up to one transaction per lane per step.
//!
//! The model reproduces exactly that rule: lanes sweep their allocation in
//! 4-byte strides, and each step contributes the number of distinct 128-byte
//! segments among the 32 lane addresses. The benchmark reports the ratio to
//! the fully-coalesced baseline, which is what Fig. 11e plots.

use gpumem_core::{DevicePtr, WARP_SIZE};

/// Memory transaction segment size in bytes (constant across the surveyed
/// architectures).
pub const SEGMENT_BYTES: u64 = 128;

/// Word size of one lane access in bytes.
pub const ACCESS_BYTES: u64 = 4;

/// Counts the transactions a warp needs to sweep its allocations.
///
/// `ptrs` holds one pointer per participating lane (≤ 32; null entries are
/// skipped, modelling inactive lanes); each lane writes `bytes_each` bytes in
/// [`ACCESS_BYTES`] strides. Returns the summed transaction count.
pub fn warp_transactions(ptrs: &[DevicePtr], bytes_each: u64) -> u64 {
    assert!(ptrs.len() <= WARP_SIZE as usize);
    if bytes_each == 0 {
        return 0;
    }
    let steps = bytes_each.div_ceil(ACCESS_BYTES);
    let mut total = 0u64;
    let mut segs = [u64::MAX; WARP_SIZE as usize];
    for step in 0..steps {
        let mut n = 0;
        for &p in ptrs {
            if p.is_null() {
                continue;
            }
            // memlint: allow(unchecked-offset-arithmetic) — step is bounded by the per-lane access count and offsets are in-heap; the sum models a lane's strided address, far below u64::MAX
            let addr = p.offset() + step * ACCESS_BYTES;
            segs[n] = addr / SEGMENT_BYTES;
            n += 1;
        }
        if n == 0 {
            continue;
        }
        let active = &mut segs[..n];
        active.sort_unstable();
        let mut distinct = 1;
        for i in 1..active.len() {
            if active[i] != active[i - 1] {
                distinct += 1;
            }
        }
        total += distinct;
    }
    total
}

/// Transactions for the ideal case: the same demand served from one packed,
/// segment-aligned region (lane `i` at offset `i * bytes_each`). This is the
/// "Baseline" series of Fig. 11e.
pub fn coalesced_baseline(lanes: usize, bytes_each: u64) -> u64 {
    assert!(lanes <= WARP_SIZE as usize);
    let ptrs: Vec<DevicePtr> = (0..lanes).map(|i| DevicePtr::new(i as u64 * bytes_each)).collect();
    warp_transactions(&ptrs, bytes_each)
}

/// Aggregates transactions over many warps and exposes the slowdown ratio.
#[derive(Clone, Copy, Debug, Default)]
pub struct AccessStats {
    /// Transactions the allocator's layout required.
    pub transactions: u64,
    /// Transactions the packed baseline would have required.
    pub baseline: u64,
}

impl AccessStats {
    /// Accumulates one warp's measurement.
    pub fn add_warp(&mut self, ptrs: &[DevicePtr], bytes_each: u64) {
        let lanes = ptrs.iter().filter(|p| !p.is_null()).count();
        self.transactions += warp_transactions(ptrs, bytes_each);
        self.baseline += coalesced_baseline(lanes, bytes_each);
    }

    /// Merge a partial result (per-worker reduction).
    pub fn merge(&mut self, other: &AccessStats) {
        self.transactions += other.transactions;
        self.baseline += other.baseline;
    }

    /// Access cost relative to the coalesced baseline (≥ 1.0 in practice;
    /// the y-axis of Fig. 11e).
    pub fn relative_cost(&self) -> f64 {
        if self.baseline == 0 {
            0.0
        } else {
            self.transactions as f64 / self.baseline as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_ptrs(base: u64, stride: u64, n: usize) -> Vec<DevicePtr> {
        (0..n).map(|i| DevicePtr::new(base + i as u64 * stride)).collect()
    }

    #[test]
    fn fully_coalesced_warp_uses_one_transaction_per_segment() {
        // 32 lanes × 4 B, consecutive, segment-aligned: one 128 B segment.
        let ptrs = seq_ptrs(0, 4, 32);
        assert_eq!(warp_transactions(&ptrs, 4), 1);
    }

    #[test]
    fn strided_accesses_touch_more_segments() {
        // Lane stride of 128 B: every lane hits its own segment.
        let ptrs = seq_ptrs(0, 128, 32);
        assert_eq!(warp_transactions(&ptrs, 4), 32);
    }

    #[test]
    fn misalignment_costs_an_extra_segment() {
        // Consecutive but shifted by 4: straddles two segments.
        let ptrs = seq_ptrs(4, 4, 32);
        assert_eq!(warp_transactions(&ptrs, 4), 2);
    }

    #[test]
    fn multi_step_sweep_sums_steps() {
        // 16 B each, 32 lanes, packed: demand = 512 B = 4 segments; the sweep
        // revisits each segment once per 4-byte step → 4 steps × 4 segments.
        let ptrs = seq_ptrs(0, 16, 32);
        assert_eq!(warp_transactions(&ptrs, 16), 16);
    }

    #[test]
    fn baseline_matches_packed_layout() {
        assert_eq!(coalesced_baseline(32, 4), 1);
        assert_eq!(coalesced_baseline(32, 16), 16);
        assert_eq!(coalesced_baseline(1, 4), 1);
        assert_eq!(coalesced_baseline(0, 4), 0);
    }

    #[test]
    fn null_lanes_are_inactive() {
        let mut ptrs = seq_ptrs(0, 4, 4);
        ptrs.push(DevicePtr::NULL);
        assert_eq!(warp_transactions(&ptrs, 4), 1);
    }

    #[test]
    fn zero_bytes_costs_nothing() {
        let ptrs = seq_ptrs(0, 4, 32);
        assert_eq!(warp_transactions(&ptrs, 0), 0);
    }

    #[test]
    fn relative_cost_ratio() {
        let mut s = AccessStats::default();
        s.add_warp(&seq_ptrs(0, 128, 32), 4); // 32 transactions vs baseline 1
        assert!((s.relative_cost() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = AccessStats { transactions: 10, baseline: 5 };
        a.merge(&AccessStats { transactions: 2, baseline: 1 });
        assert_eq!(a.transactions, 12);
        assert_eq!(a.baseline, 6);
        assert!((a.relative_cost() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_cost_zero() {
        assert_eq!(AccessStats::default().relative_cost(), 0.0);
    }
}
