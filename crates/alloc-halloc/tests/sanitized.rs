//! Halloc under the shadow-heap sanitizer: the hashed slab path and the
//! large-request relay to the embedded CUDA-Allocator model must both stay
//! free of aliasing and free-path bugs.

use alloc_halloc::Halloc;
use gpumem_core::sanitize::Sanitized;
use gpumem_core::{DeviceAllocator, DevicePtr, ThreadCtx, WarpCtx};

#[test]
fn slab_and_relay_churn_is_clean() {
    let san = Sanitized::new(Halloc::with_capacity(32 << 20));
    let ctx = ThreadCtx::host();
    for cycle in 0..4u64 {
        // Mix small slab-served sizes with requests past the slab maximum
        // (relayed to the busy-list allocator).
        let ptrs: Vec<_> = (0..64u64)
            .map(|i| {
                let size = if i % 8 == 0 { 4096 + cycle * 512 } else { 16 + (i % 6) * 40 };
                san.malloc(&ctx, size).unwrap()
            })
            .collect();
        for p in ptrs {
            san.free(&ctx, p).unwrap();
        }
    }
    let report = san.take_report();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.live, 0);
}

#[test]
fn warp_collective_path_is_clean() {
    let san = Sanitized::new(Halloc::with_capacity(16 << 20));
    let w = WarpCtx { warp: 5, block: 2, sm: 0 };
    let mut out = [DevicePtr::NULL; 32];
    san.malloc_warp(&w, &[64; 32], &mut out).unwrap();
    san.free_warp(&w, &out).unwrap();
    assert!(san.report().is_clean(), "{}", san.report());
}

#[test]
fn mmap_backed_heap_run_is_clean() {
    use gpumem_core::{DeviceHeap, HeapBackendKind, HeapSpec, ThreadCtx};
    use std::sync::Arc;
    if !HeapBackendKind::Mmap.available() {
        return;
    }
    // Same manager, lazily-committed MAP_NORESERVE substrate: pages must
    // appear zeroed on first touch exactly like the RAM backend's.
    let heap = Arc::new(DeviceHeap::try_new(HeapSpec::mmap(32 << 20)).unwrap());
    let san = Sanitized::new(Halloc::new(heap));
    let ctx = ThreadCtx::host();
    let ptrs: Vec<_> = (0..128u64)
        .map(|i| {
            let size = 16 + (i % 16) * 48;
            let p = san.malloc(&ctx, size).unwrap();
            san.heap().fill(p, size, (i % 251) as u8 | 1);
            assert_eq!(san.heap().read_u8(p, size - 1), (i % 251) as u8 | 1);
            p
        })
        .collect();
    for p in ptrs {
        san.free(&ctx, p).unwrap();
    }
    let report = san.take_report();
    assert!(report.is_clean(), "{report}");
}
