//! # alloc-halloc — Halloc (Adinetz & Pleiter, 2014)
//!
//! Paper §2.7: "Halloc starts by allocating slabs of 2 MB–8 MB in its
//! initialization phase, which can then be assigned to an allocation size at
//! runtime. The core of Halloc is a bitmap heap with one bit for each block
//! that can be allocated from the system."
//!
//! Reproduced design:
//!
//! * **Slabs** ([`slab`]) are assigned to a size class on demand and carry a
//!   block bitmap plus an allocation counter. Free slabs can switch chunk
//!   sizes; empty slabs are returned to the free pool.
//! * **Size classes** are the powers of two and 3·2ᵏ values up to 3072 B
//!   (Figure 5's `alloc_sizes` column: 16, 24, 32, 48, 64, …, 3072).
//! * **Hashed bitmap traversal** (Figure 5's hash function) scatters bit
//!   searches with a prime step so the search "visits all blocks and is
//!   fast and scalable, as long as < 85 % of the blocks are allocated".
//! * **Head slabs**: each class allocates from a head slab; "head
//!   replacement also starts early (fill level > 83.5 %) to reduce this
//!   impact", and busy slabs (> 60 %) are avoided when choosing a new head.
//! * **Warp-aggregated atomics**: `malloc_warp` batches the counter updates
//!   of same-class lanes through one leader update
//!   ([`slab::Slab::reserve_many`]).
//! * **Allocations larger than 3 KiB are relayed to the CUDA-Allocator**,
//!   which manages a reserved section at the top of the heap ("it also
//!   splits its memory into two sections to accommodate larger allocations
//!   with the CUDA-Allocator").

// Also enforced workspace-wide; restated here so the audit
// guarantee survives if this crate is ever built out of tree.
#![deny(unsafe_op_in_unsafe_fn)]

use gpumem_core::sync::{AtomicU32, Ordering};
use std::sync::Arc;

use alloc_cuda::CudaAllocModel;
use gpumem_core::{
    AllocError, Counter, DeviceAllocator, DeviceHeap, DevicePtr, ManagerInfo, Metrics,
    RegisterFootprint, ThreadCtx, WarpCtx,
};

pub mod slab;

use slab::{Slab, CLASS_FREE};

/// Size classes: powers of two and 3·2ᵏ, 16 B … 3072 B.
pub const CLASSES: [u64; 17] =
    [16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096];
/// Requests above this are relayed to the CUDA-Allocator model.
pub const MAX_BLOCK: u64 = 3072;
/// Head replacement threshold (fill %·10 — the paper's 83.5 %).
pub const HEAD_REPLACE_PCT10: u32 = 835;
/// "Busy" slab threshold: avoided in head search.
pub const BUSY_PCT: u32 = 60;
/// Sentinel: class has no head slab yet.
const NO_HEAD: u32 = u32::MAX;

/// Tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Slab size in bytes (the original uses 2–8 MiB).
    pub slab_bytes: u64,
    /// Fraction denominator of the heap handed to the CUDA-Allocator for
    /// large requests (¼ by default).
    pub cuda_share_div: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { slab_bytes: 2 << 20, cuda_share_div: 4 }
    }
}

/// The Halloc memory manager.
pub struct Halloc {
    heap: Arc<DeviceHeap>,
    cfg: Config,
    slabs: Box<[Slab]>,
    /// Head slab per size class.
    heads: Box<[AtomicU32]>,
    /// Rotating hint for free-slab acquisition.
    free_hint: AtomicU32,
    /// Start of the CUDA-Allocator section.
    cuda_base: u64,
    cuda: CudaAllocModel,
    metrics: Metrics,
}

/// Locals live in `malloc` (register proxy): hash state, slab cursors,
/// bitmap word/bit registers — the survey reports ~40 registers.
#[repr(C)]
struct MallocFrame {
    size: u64,
    class_idx: u32,
    block_size: u32,
    hash: u64,
    slab_idx: u32,
    blocks: u32,
    word: u32,
    bit: u32,
    step: u64,
    count: u32,
    fill: u32,
    head: u32,
    retries: u32,
    base: u64,
    result: u64,
    probe_i: u64,
    word_val: u32,
    granted: u32,
    spill: [u64; 7],
}

/// Locals live in `free`.
#[repr(C)]
struct FreeFrame {
    ptr: u64,
    slab_idx: u32,
    class_idx: u32,
    block: u32,
    word: u32,
    prev_count: u32,
    state: u32,
    base: u64,
    spill: [u64; 3],
}

impl Halloc {
    /// Creates Halloc over all of `heap` with default tuning.
    pub fn new(heap: Arc<DeviceHeap>) -> Self {
        Self::with_config(heap, Config::default())
    }

    /// Creates Halloc with explicit tuning.
    pub fn with_config(heap: Arc<DeviceHeap>, cfg: Config) -> Self {
        let len = heap.len();
        assert!(cfg.slab_bytes >= 64 * 1024, "slab too small");
        assert_eq!(cfg.slab_bytes % 4096, 0);
        let cuda_len = {
            let raw = len / cfg.cuda_share_div;
            (raw / cfg.slab_bytes).max(1) * cfg.slab_bytes
        };
        assert!(len > cuda_len, "heap too small for Halloc's two sections");
        let n_slabs = ((len - cuda_len) / cfg.slab_bytes) as usize;
        assert!(n_slabs >= 1, "heap too small for one slab");
        let cuda_base = n_slabs as u64 * cfg.slab_bytes;
        let max_blocks = (cfg.slab_bytes / CLASSES[0]) as u32;
        let cuda = CudaAllocModel::with_region(Arc::clone(&heap), cuda_base, len - cuda_base);
        Halloc {
            heap,
            cfg,
            slabs: (0..n_slabs).map(|_| Slab::new(max_blocks)).collect(),
            heads: (0..CLASSES.len()).map(|_| AtomicU32::new(NO_HEAD)).collect(),
            free_hint: AtomicU32::new(0),
            cuda_base,
            cuda,
            metrics: Metrics::disabled(),
        }
    }

    /// Attaches a contention-observability handle. The embedded
    /// CUDA-Allocator section shares the counters through
    /// [`Metrics::relay`], so relayed large requests contribute structural
    /// counters without double-counting `malloc_calls`/`free_calls`.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.cuda.set_metrics(metrics.relay());
        self.metrics = metrics;
        self
    }

    /// Convenience constructor owning its heap.
    pub fn with_capacity(len: u64) -> Self {
        Self::new(Arc::new(DeviceHeap::new(len)))
    }

    fn class_index(size: u64) -> Option<usize> {
        CLASSES.iter().position(|&c| c >= size)
    }

    fn blocks_per_slab(&self, class_idx: usize) -> u32 {
        (self.cfg.slab_bytes / CLASSES[class_idx]) as u32
    }

    /// Finds a slab to serve `class_idx`: prefer an existing same-class,
    /// non-busy slab; otherwise claim a free slab. ("Free slabs can switch
    /// between chunk sizes, sparse slabs can switch between block sizes…
    /// busy slabs (>60 %) are normally not used during head search, except
    /// when no other blocks are available anymore.")
    fn find_head(&self, class_idx: usize, allow_busy: bool, probes: &mut u64) -> Option<u32> {
        let blocks = self.blocks_per_slab(class_idx);
        let n = self.slabs.len() as u32;
        let start = self.free_hint.fetch_add(1, Ordering::Relaxed) % n;
        // Pass 1: same-class slab under the busy threshold.
        for i in 0..n {
            let s = (start + i) % n;
            let slab = &self.slabs[s as usize];
            *probes += 1;
            if slab.class.load(Ordering::Acquire) == class_idx as u32
                && slab.fill_pct(blocks) < BUSY_PCT
            {
                return Some(s);
            }
        }
        // Pass 2: claim a free slab.
        for i in 0..n {
            let s = (start + i) % n;
            *probes += 1;
            if self.slabs[s as usize].try_assign(class_idx as u32, blocks) {
                return Some(s);
            }
        }
        // Pass 3: any same-class slab with space, busy or not.
        if allow_busy {
            for i in 0..n {
                let s = (start + i) % n;
                let slab = &self.slabs[s as usize];
                *probes += 1;
                if slab.class.load(Ordering::Acquire) == class_idx as u32
                    && slab.fill_pct(blocks) < 100
                {
                    return Some(s);
                }
            }
        }
        None
    }

    /// Reserves `want` blocks of `class_idx` on some slab; returns
    /// `(slab_idx, granted)`. Head-search slab scans feed `probe_steps`,
    /// lost counter CASes and head-replacement rounds feed `cas_retries`.
    fn reserve_blocks(
        &self,
        sm: u32,
        class_idx: usize,
        want: u32,
    ) -> Result<(u32, u32), AllocError> {
        let blocks = self.blocks_per_slab(class_idx);
        let head_cell = &self.heads[class_idx];
        let (mut probes, mut retries) = (0u64, 0u64);
        let flush = |probes: u64, retries: u64| {
            self.metrics.add(sm, Counter::ProbeSteps, probes);
            self.metrics.add(sm, Counter::CasRetries, retries);
            self.metrics.record_retries(sm, retries);
        };
        for attempt in 0..self.slabs.len() * 2 + 4 {
            if attempt > 0 {
                retries += 1;
            }
            let mut head = head_cell.load(Ordering::Acquire);
            if head == NO_HEAD || head as usize >= self.slabs.len() {
                match self.find_head(class_idx, attempt > 0, &mut probes) {
                    Some(s) => {
                        let _ = head_cell.compare_exchange(
                            head,
                            s,
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                        );
                        head = s;
                    }
                    None => {
                        // Transiently possible under contention: a slab can
                        // be mid-assignment (setup flag) while the last free
                        // slab was just claimed. Retry within the bounded
                        // loop; persistent failure is a real out-of-memory.
                        if attempt + 1 == self.slabs.len() * 2 + 4 {
                            flush(probes, retries);
                            return Err(AllocError::OutOfMemory(CLASSES[class_idx]));
                        }
                        gpumem_core::sync::hint::spin_loop();
                        continue;
                    }
                }
            }
            let slab = &self.slabs[head as usize];
            // The head may have been reassigned to another class meanwhile.
            if slab.class.load(Ordering::Acquire) == class_idx as u32 {
                let granted = slab.reserve_many_with(blocks, want, &mut retries);
                if granted > 0 {
                    // Post-reservation validation: between the class check
                    // and the reservation the slab may have been freed and
                    // reassigned. Our reservation now blocks `try_free`, so
                    // a matching class here is stable until we release.
                    if slab.class.load(Ordering::Acquire) != class_idx as u32 {
                        slab.unreserve(granted);
                        let _ = head_cell.compare_exchange(
                            head,
                            NO_HEAD,
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                        );
                        continue;
                    }
                    // Early head replacement at 83.5 % fill.
                    if slab.fill_pct(blocks) * 10 > HEAD_REPLACE_PCT10 {
                        if let Some(s) = self.find_head(class_idx, false, &mut probes) {
                            let _ = head_cell.compare_exchange(
                                head,
                                s,
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            );
                        }
                    }
                    flush(probes, retries);
                    return Ok((head, granted));
                }
            }
            // Full or stolen: drop this head and retry.
            let _ = head_cell.compare_exchange(head, NO_HEAD, Ordering::AcqRel, Ordering::Relaxed);
        }
        flush(probes, retries);
        Err(AllocError::OutOfMemory(CLASSES[class_idx]))
    }

    fn block_ptr(&self, slab_idx: u32, class_idx: usize, block: u32) -> DevicePtr {
        let base = slab_idx as u64 * self.cfg.slab_bytes;
        DevicePtr::new(base + block as u64 * CLASSES[class_idx])
    }

    fn malloc_inner(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        if size == 0 {
            return Err(AllocError::UnsupportedSize(0));
        }
        if size > MAX_BLOCK {
            // "Allocations larger than 3 KiB are relayed to the
            // CUDA-Allocator."
            self.metrics.tick(ctx.sm, Counter::OomFallbacks);
            return self.cuda.malloc(ctx, size);
        }
        // memlint: allow(hot-path-panic) — the size > MAX_BLOCK case returned via the CUDA fallback just above, so class_index(size) is Some by the guard
        let class_idx = Self::class_index(size).expect("size <= MAX_BLOCK");
        let (slab_idx, _) = self.reserve_blocks(ctx.sm, class_idx, 1)?;
        let blocks = self.blocks_per_slab(class_idx);
        let slab = &self.slabs[slab_idx as usize];
        let (mut probes, mut lost) = (0u64, 0u64);
        let claimed = slab.claim_bit_with(blocks, ctx.scatter_hash(), &mut probes, &mut lost);
        self.metrics.add(ctx.sm, Counter::ProbeSteps, probes);
        self.metrics.add(ctx.sm, Counter::CasRetries, lost);
        self.metrics.record_retries(ctx.sm, lost);
        match claimed {
            Some(block) => Ok(self.block_ptr(slab_idx, class_idx, block)),
            None => {
                slab.unreserve(1);
                Err(AllocError::Contention("Halloc bitmap probe"))
            }
        }
    }

    fn free_inner(&self, ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
        if ptr.is_null() || ptr.offset() >= self.heap.len() {
            return Err(AllocError::InvalidPointer);
        }
        if ptr.offset() >= self.cuda_base {
            return self.cuda.free(ctx, ptr);
        }
        let slab_idx = (ptr.offset() / self.cfg.slab_bytes) as usize;
        let slab = &self.slabs[slab_idx];
        let class = slab.class.load(Ordering::Acquire);
        if class == CLASS_FREE || class as usize >= CLASSES.len() {
            return Err(AllocError::InvalidPointer);
        }
        let class_idx = class as usize;
        let base = slab_idx as u64 * self.cfg.slab_bytes;
        let delta = ptr.offset() - base;
        if !delta.is_multiple_of(CLASSES[class_idx]) {
            return Err(AllocError::InvalidPointer);
        }
        let block = (delta / CLASSES[class_idx]) as u32;
        if block >= self.blocks_per_slab(class_idx) {
            return Err(AllocError::InvalidPointer);
        }
        let prev = slab.release_bit(block).map_err(|()| AllocError::InvalidPointer)?;
        if prev == 1 {
            // Slab is empty: return it to the free pool (and drop it as a
            // head if it was one).
            if slab.try_free() {
                let _ = self.heads[class_idx].compare_exchange(
                    slab_idx as u32,
                    NO_HEAD,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
            }
        }
        Ok(())
    }

    /// Warp-aggregated allocation body: lanes of the same class share one
    /// counter update through the leader. `served_total` counts the lanes
    /// actually served so the trait wrapper can account partial failures.
    fn malloc_warp_inner(
        &self,
        warp: &WarpCtx,
        sizes: &[u64],
        out: &mut [DevicePtr],
        served_total: &mut u64,
    ) -> Result<(), AllocError> {
        debug_assert_eq!(sizes.len(), out.len());
        // Group lanes by class (CLASSES.len() groups max; tiny fixed array).
        // memlint: allow(hot-path-host-alloc) — warp-lane grouping models the on-device ballot/prefix-sum; the Vec is bounded by the 32-lane warp width and stands in for a register lane mask
        let mut remaining: Vec<usize> = (0..sizes.len()).collect();
        while let Some(&first) = remaining.first() {
            let size = sizes[first];
            if size == 0 {
                return Err(AllocError::UnsupportedSize(0));
            }
            if size > MAX_BLOCK {
                self.metrics.tick(warp.sm, Counter::OomFallbacks);
                out[first] = self.cuda.malloc(&warp.lane(first as u32), size)?;
                *served_total += 1;
                remaining.remove(0);
                continue;
            }
            // memlint: allow(hot-path-panic) — lanes reaching this point were filtered to size <= MAX_BLOCK, so class_index is Some
            let class_idx = Self::class_index(size).expect("bounded");
            let group: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&i| {
                    sizes[i] > 0
                        && sizes[i] <= MAX_BLOCK
                        && Self::class_index(sizes[i]) == Some(class_idx)
                })
                // memlint: allow(hot-path-host-alloc) — per-class lane group, bounded by the 32-lane warp width — models the matched-lane mask of the device ballot
                .collect();
            let mut todo = group.len() as u32;
            let mut cursor = 0usize;
            while todo > 0 {
                let (slab_idx, granted) = self.reserve_blocks(warp.sm, class_idx, todo)?;
                let blocks = self.blocks_per_slab(class_idx);
                let slab = &self.slabs[slab_idx as usize];
                let (mut probes, mut lost) = (0u64, 0u64);
                let mut served = 0;
                for g in 0..granted {
                    let lane = group[cursor];
                    match slab.claim_bit_with(
                        blocks,
                        warp.lane(lane as u32).scatter_hash(),
                        &mut probes,
                        &mut lost,
                    ) {
                        Some(block) => {
                            out[lane] = self.block_ptr(slab_idx, class_idx, block);
                            cursor += 1;
                            served += 1;
                        }
                        None => {
                            slab.unreserve(granted - g);
                            break;
                        }
                    }
                }
                self.metrics.add(warp.sm, Counter::ProbeSteps, probes);
                self.metrics.add(warp.sm, Counter::CasRetries, lost);
                self.metrics.record_retries(warp.sm, lost);
                // One leader counter update covered all `served` lanes.
                self.metrics.add(warp.sm, Counter::WarpCoalesced, served as u64);
                *served_total += served as u64;
                todo -= served;
                if served == 0 {
                    return Err(AllocError::Contention("Halloc warp aggregation"));
                }
            }
            remaining.retain(|i| !group.contains(i));
        }
        Ok(())
    }
}

impl DeviceAllocator for Halloc {
    fn info(&self) -> ManagerInfo {
        ManagerInfo::builder("Halloc")
            .alignment(8) // class 24 B blocks land on 8-byte boundaries
            .max_native_size(MAX_BLOCK)
            .relays_large_to_cuda(true)
            .instrumented(true)
            .build()
    }

    fn heap(&self) -> &DeviceHeap {
        &self.heap
    }

    fn malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        self.metrics.tick(ctx.sm, Counter::MallocCalls);
        let r = self.malloc_inner(ctx, size);
        if r.is_err() {
            self.metrics.tick(ctx.sm, Counter::MallocFailures);
        }
        r
    }

    fn free(&self, ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
        self.metrics.tick(ctx.sm, Counter::FreeCalls);
        let r = self.free_inner(ctx, ptr);
        if r.is_err() {
            self.metrics.tick(ctx.sm, Counter::FreeFailures);
        }
        r
    }

    /// Warp-aggregated allocation: lanes of the same class share one
    /// counter update through the leader.
    fn malloc_warp(
        &self,
        warp: &WarpCtx,
        sizes: &[u64],
        out: &mut [DevicePtr],
    ) -> Result<(), AllocError> {
        self.metrics.add(warp.sm, Counter::MallocCalls, sizes.len() as u64);
        // The inner body fills `out` as groups are served; start from a
        // clean slate so a partial failure can tell granted lanes apart
        // from caller residue.
        for slot in out.iter_mut() {
            *slot = DevicePtr::NULL;
        }
        let mut served = 0u64;
        let r = self.malloc_warp_inner(warp, sizes, out, &mut served);
        if r.is_err() {
            self.metrics.add(warp.sm, Counter::MallocFailures, sizes.len() as u64 - served);
            // All-or-nothing like the trait default: free the lanes that
            // were granted before the failure so nothing leaks.
            for (lane, slot) in out.iter_mut().enumerate() {
                if !slot.is_null() {
                    let _ = self.free_inner(&warp.lane(lane as u32), *slot);
                    *slot = DevicePtr::NULL;
                }
            }
        }
        r
    }

    fn register_footprint(&self) -> RegisterFootprint {
        RegisterFootprint::from_frames(
            std::mem::size_of::<MallocFrame>(),
            std::mem::size_of::<FreeFrame>(),
        )
    }

    fn metrics(&self) -> Metrics {
        self.metrics.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Halloc {
        // 1 MiB slabs keep the tests light: 8 MiB → 6 slab + 2 cuda.
        Halloc::with_config(
            Arc::new(DeviceHeap::new(8 << 20)),
            Config { slab_bytes: 1 << 20, cuda_share_div: 4 },
        )
    }

    fn ctx() -> ThreadCtx {
        ThreadCtx::host()
    }

    #[test]
    fn class_lookup_matches_figure_5() {
        assert_eq!(Halloc::class_index(1), Some(0)); // 16
        assert_eq!(Halloc::class_index(17), Some(1)); // 24
        assert_eq!(Halloc::class_index(25), Some(2)); // 32
        assert_eq!(Halloc::class_index(100), Some(6)); // 128
        assert_eq!(Halloc::class_index(3072), Some(15));
        assert_eq!(Halloc::class_index(5000), None);
    }

    #[test]
    fn malloc_roundtrip_and_block_alignment() {
        let a = small();
        let p = a.malloc(&ctx(), 100).unwrap();
        // 100 → class 128: block-aligned within the slab.
        assert_eq!(p.offset() % 128, 0);
        a.heap().fill(p, 100, 0xaa);
        a.free(&ctx(), p).unwrap();
    }

    #[test]
    fn same_class_reuses_head_slab() {
        let a = small();
        let p1 = a.malloc(&ctx(), 64).unwrap();
        let p2 = a.malloc(&ctx(), 64).unwrap();
        assert_eq!(p1.offset() / (1 << 20), p2.offset() / (1 << 20), "same head slab");
    }

    #[test]
    fn different_classes_use_different_slabs() {
        let a = small();
        let p1 = a.malloc(&ctx(), 64).unwrap();
        let p2 = a.malloc(&ctx(), 1024).unwrap();
        assert_ne!(p1.offset() / (1 << 20), p2.offset() / (1 << 20));
    }

    #[test]
    fn large_requests_relay_to_cuda_section() {
        let a = small();
        let p = a.malloc(&ctx(), 100_000).unwrap();
        assert!(p.offset() >= a.cuda_base, "large allocation must live in the CUDA section");
        a.free(&ctx(), p).unwrap();
    }

    #[test]
    fn boundary_at_3072() {
        let a = small();
        let p = a.malloc(&ctx(), 3072).unwrap();
        assert!(p.offset() < a.cuda_base, "3072 is still native");
        let q = a.malloc(&ctx(), 3073).unwrap();
        assert!(q.offset() >= a.cuda_base, "3073 relays to CUDA");
    }

    #[test]
    fn double_free_detected() {
        let a = small();
        let p = a.malloc(&ctx(), 64).unwrap();
        a.free(&ctx(), p).unwrap();
        assert_eq!(a.free(&ctx(), p), Err(AllocError::InvalidPointer));
    }

    #[test]
    fn invalid_pointers_rejected() {
        let a = small();
        assert_eq!(a.free(&ctx(), DevicePtr::NULL), Err(AllocError::InvalidPointer));
        // Unassigned slab.
        assert_eq!(a.free(&ctx(), DevicePtr::new(3 << 20)), Err(AllocError::InvalidPointer));
        // Misaligned within an assigned slab.
        let p = a.malloc(&ctx(), 64).unwrap();
        assert_eq!(a.free(&ctx(), DevicePtr::new(p.offset() + 8)), Err(AllocError::InvalidPointer));
    }

    #[test]
    fn empty_slab_returns_to_free_pool_and_switches_class() {
        let a = Halloc::with_config(
            Arc::new(DeviceHeap::new(4 << 20)),
            Config { slab_bytes: 1 << 20, cuda_share_div: 4 },
        );
        // Only 3 small slabs: exercise reassignment.
        let p = a.malloc(&ctx(), 16).unwrap();
        let slab0 = p.offset() / (1 << 20);
        a.free(&ctx(), p).unwrap();
        // Fill all three slabs with a different class; the freed slab must
        // be reusable.
        let mut ptrs = Vec::new();
        loop {
            match a.malloc(&ctx(), 3072) {
                Ok(p) => ptrs.push(p),
                Err(AllocError::OutOfMemory(_)) => break,
                Err(e) => panic!("{e}"),
            }
        }
        let reused = ptrs.iter().any(|p| p.offset() / (1 << 20) == slab0);
        assert!(reused, "slab {slab0} was never reassigned");
    }

    #[test]
    fn head_replacement_under_sustained_load() {
        let a = small();
        // 1 MiB slab of 1024 B blocks = 1024 blocks; allocate 2500 so the
        // head must be replaced at least twice.
        let ptrs: Vec<DevicePtr> = (0..2500).map(|_| a.malloc(&ctx(), 1024).unwrap()).collect();
        let mut slabs: Vec<u64> = ptrs.iter().map(|p| p.offset() >> 20).collect();
        slabs.sort_unstable();
        slabs.dedup();
        assert!(slabs.len() >= 3, "expected ≥3 slabs, got {}", slabs.len());
        for p in ptrs {
            a.free(&ctx(), p).unwrap();
        }
    }

    #[test]
    fn warp_aggregated_malloc_mixed_classes() {
        let a = small();
        let w = WarpCtx { warp: 0, block: 0, sm: 0 };
        let sizes: Vec<u64> = (0..32).map(|i| if i % 2 == 0 { 64 } else { 256 }).collect();
        let mut out = [DevicePtr::NULL; 32];
        a.malloc_warp(&w, &sizes, &mut out).unwrap();
        let mut spans: Vec<(u64, u64)> = out
            .iter()
            .zip(&sizes)
            .map(|(p, &s)| (p.offset(), Halloc::class_index(s).map(|c| CLASSES[c]).unwrap()))
            .collect();
        spans.sort_unstable();
        for pair in spans.windows(2) {
            assert!(pair[0].0 + pair[0].1 <= pair[1].0, "overlap {pair:?}");
        }
        for (&p, &s) in out.iter().zip(&sizes) {
            let _ = s;
            a.free(&ctx(), p).unwrap();
        }
    }

    #[test]
    fn oom_reported_and_recovers() {
        let a = Halloc::with_config(
            Arc::new(DeviceHeap::new(2 << 20)),
            Config { slab_bytes: 1 << 20, cuda_share_div: 2 },
        );
        let mut ptrs = Vec::new();
        loop {
            match a.malloc(&ctx(), 2048) {
                Ok(p) => ptrs.push(p),
                Err(AllocError::OutOfMemory(_)) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert!(ptrs.len() >= 500, "{}", ptrs.len());
        for p in ptrs {
            a.free(&ctx(), p).unwrap();
        }
        assert!(a.malloc(&ctx(), 2048).is_ok());
    }

    #[test]
    fn concurrent_stress_no_overlap() {
        // More slabs than the tiny `small()` fixture: with only six slabs
        // and four churning classes, a class that transiently drains can
        // legitimately lose its slab to the free pool and OOM — real
        // deployments run hundreds of slabs per class.
        let a = Arc::new(Halloc::with_config(
            Arc::new(DeviceHeap::new(32 << 20)),
            Config { slab_bytes: 1 << 20, cuda_share_div: 4 },
        ));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                let mut live = Vec::new();
                for i in 0..2000u32 {
                    let c = ThreadCtx::from_linear(t * 2000 + i, 256, 80);
                    // Four classes at most: each live class pins one of the
                    // six 1 MiB slabs.
                    let size = CLASSES[(i as usize % 4) * 2];
                    let p = a.malloc(&c, size).expect("plenty of space");
                    live.push((p, size, c));
                    if i % 2 == 1 {
                        let (p, _, c) = live.swap_remove(0);
                        a.free(&c, p).unwrap();
                    }
                }
                live.into_iter().map(|(p, s, _)| (p.offset(), s)).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<(u64, u64)> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        for w in all.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap {:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn register_footprint_midfield() {
        let fp = small().register_footprint();
        assert!((30..=50).contains(&fp.malloc), "{fp}");
        assert!((15..=30).contains(&fp.free), "{fp}");
    }
}
