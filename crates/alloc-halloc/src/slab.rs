//! Slab state and the bitmap-probe allocation core of Halloc.
//!
//! "The core of Halloc is a bitmap heap with one bit for each block that can
//! be allocated from the system. To allocate a free block, a hash function
//! is used to traverse the corresponding bitmap. This visits all blocks and
//! is fast and scalable, as long as <85 % of the blocks are allocated."
//! (paper §2.7)

use gpumem_core::sync::{AtomicU32, Ordering};

/// Slab `class` metadata value: unassigned.
pub const CLASS_FREE: u32 = u32::MAX;
/// Slab `count` sentinel while a slab is being returned to the free state.
pub const COUNT_LOCK: u32 = 0x4000_0000;

/// Primes used for the probe step, from Figure 5 ("s is prime (7, 11, 13) —
/// reduces collisions; in practice faster than linear hashing").
pub const STEP_PRIMES: [u64; 3] = [7, 11, 13];

/// One slab's side metadata.
pub struct Slab {
    /// Size-class index serving this slab, or [`CLASS_FREE`].
    pub class: AtomicU32,
    /// Allocated blocks (with [`COUNT_LOCK`] as the reset sentinel).
    pub count: AtomicU32,
    /// Bitmap over blocks; sized for the smallest class so any assignment
    /// fits. One bit per block.
    pub bitmap: Box<[AtomicU32]>,
}

impl Slab {
    /// Creates an unassigned slab able to track up to `max_blocks` blocks.
    pub fn new(max_blocks: u32) -> Self {
        let words = max_blocks.div_ceil(32) as usize;
        Slab {
            class: AtomicU32::new(CLASS_FREE),
            count: AtomicU32::new(0),
            bitmap: (0..words).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Attempts to claim this free slab for `class_idx`; winner initialises
    /// the bitmap's invalid tail bits for `blocks` blocks.
    pub fn try_assign(&self, class_idx: u32, blocks: u32) -> bool {
        if self
            .class
            .compare_exchange(
                CLASS_FREE,
                class_idx | 0x8000_0000,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_err()
        {
            return false;
        }
        let words = blocks.div_ceil(32) as usize;
        for (w, word) in self.bitmap.iter().enumerate() {
            if w + 1 < words {
                word.store(0, Ordering::Relaxed);
            } else if w + 1 == words {
                let tail = blocks - (w as u32) * 32;
                let valid = if tail >= 32 { u32::MAX } else { (1u32 << tail) - 1 };
                word.store(!valid, Ordering::Relaxed);
            } else {
                word.store(u32::MAX, Ordering::Relaxed);
            }
        }
        // Publish: drop the setup flag.
        self.class.store(class_idx, Ordering::Release);
        true
    }

    /// Reserves one block slot; `false` when the slab is full (or locked).
    pub fn reserve(&self, blocks: u32) -> bool {
        self.reserve_many(blocks, 1) == 1
    }

    /// Reserves up to `want` slots at once (warp-aggregated counter update:
    /// "only the leader increments and broadcasts the results… up to 32×
    /// less atomics"). Returns how many were granted.
    pub fn reserve_many(&self, blocks: u32, want: u32) -> u32 {
        let mut retries = 0;
        self.reserve_many_with(blocks, want, &mut retries)
    }

    /// [`Slab::reserve_many`] that also counts lost counter CASes into
    /// `retries` (the `cas_retries` source of the contention-observability
    /// layer — every loser of the shared counter update retries here).
    pub fn reserve_many_with(&self, blocks: u32, want: u32, retries: &mut u64) -> u32 {
        let mut cur = self.count.load(Ordering::Acquire);
        loop {
            if cur >= blocks {
                return 0; // full or locked
            }
            let granted = want.min(blocks - cur);
            match self.count.compare_exchange_weak(
                cur,
                cur + granted,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return granted,
                Err(actual) => {
                    *retries += 1;
                    cur = actual;
                }
            }
        }
    }

    /// Gives back `n` reserved-but-unused slots.
    pub fn unreserve(&self, n: u32) {
        self.count.fetch_sub(n, Ordering::AcqRel);
    }

    /// Finds and claims a free bit using the hashed traversal of Figure 5.
    /// The caller must hold a reservation. Returns the block index.
    pub fn claim_bit(&self, blocks: u32, hash: u64) -> Option<u32> {
        let (mut probes, mut lost) = (0, 0);
        self.claim_bit_with(blocks, hash, &mut probes, &mut lost)
    }

    /// [`Slab::claim_bit`] that also counts bitmap words visited into
    /// `probes` and lost `fetch_or` bit claims into `lost` (the
    /// `probe_steps`/`cas_retries` sources of the contention-observability
    /// layer — the hashed sweep the paper says stays fast "as long as <85 %
    /// of the blocks are allocated").
    pub fn claim_bit_with(
        &self,
        blocks: u32,
        hash: u64,
        probes: &mut u64,
        lost: &mut u64,
    ) -> Option<u32> {
        let n_words = blocks.div_ceil(32) as u64;
        let start = hash % n_words;
        let step = STEP_PRIMES[(hash >> 32) as usize % STEP_PRIMES.len()];
        // Hashed sweep, then one deterministic linear sweep as backstop.
        for i in 0..n_words * 2 {
            let w = if i < n_words {
                ((start + i * step) % n_words) as usize
            } else {
                (i - n_words) as usize
            };
            let word = &self.bitmap[w];
            *probes += 1;
            loop {
                let v = word.load(Ordering::Acquire);
                let free = !v;
                if free == 0 {
                    break;
                }
                let bit = free.trailing_zeros();
                if word.fetch_or(1 << bit, Ordering::AcqRel) & (1 << bit) == 0 {
                    return Some(w as u32 * 32 + bit);
                }
                *lost += 1;
            }
        }
        None
    }

    /// Clears a block bit; `Err` on double free. Returns the previous count.
    /// The unit error carries no detail on purpose — the caller maps it onto
    /// its own error type.
    #[allow(clippy::result_unit_err)]
    pub fn release_bit(&self, block: u32) -> Result<u32, ()> {
        let w = (block / 32) as usize;
        let bit = block % 32;
        let prev = self.bitmap[w].fetch_and(!(1 << bit), Ordering::AcqRel);
        if prev & (1 << bit) == 0 {
            return Err(());
        }
        Ok(self.count.fetch_sub(1, Ordering::AcqRel))
    }

    /// Fill ratio in percent (0-100) for `blocks` capacity.
    pub fn fill_pct(&self, blocks: u32) -> u32 {
        let c = self.count.load(Ordering::Relaxed);
        if c >= COUNT_LOCK || blocks == 0 {
            return 100;
        }
        c * 100 / blocks
    }

    /// Attempts to return an empty slab to the free pool ("marking a slab
    /// as free, which takes more time").
    pub fn try_free(&self) -> bool {
        if self.count.compare_exchange(0, COUNT_LOCK, Ordering::AcqRel, Ordering::Acquire).is_err()
        {
            return false;
        }
        self.class.store(CLASS_FREE, Ordering::Release);
        self.count.store(0, Ordering::Release);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_initialises_valid_bits() {
        let s = Slab::new(128);
        assert!(s.try_assign(3, 50));
        assert!(!s.try_assign(4, 50), "already assigned");
        assert_eq!(s.class.load(Ordering::Relaxed), 3);
        // Words: 50 bits valid → word0 all valid, word1 has 18 valid bits.
        assert_eq!(s.bitmap[0].load(Ordering::Relaxed), 0);
        assert_eq!(s.bitmap[1].load(Ordering::Relaxed), !((1u32 << 18) - 1));
        assert_eq!(s.bitmap[2].load(Ordering::Relaxed), u32::MAX);
    }

    #[test]
    fn reserve_caps_at_capacity() {
        let s = Slab::new(64);
        s.try_assign(0, 10);
        assert_eq!(s.reserve_many(10, 8), 8);
        assert_eq!(s.reserve_many(10, 8), 2, "only 2 left");
        assert!(!s.reserve(10));
        s.unreserve(5);
        assert!(s.reserve(10));
    }

    #[test]
    fn claim_release_roundtrip() {
        let s = Slab::new(64);
        s.try_assign(0, 40);
        assert!(s.reserve(40));
        let b = s.claim_bit(40, 12345).unwrap();
        assert!(b < 40);
        assert_eq!(s.release_bit(b).unwrap(), 1);
        assert!(s.release_bit(b).is_err(), "double free detected");
    }

    #[test]
    fn claims_are_unique_until_full() {
        let s = Slab::new(64);
        s.try_assign(0, 40);
        let mut seen = std::collections::HashSet::new();
        for i in 0..40u64 {
            assert!(s.reserve(40));
            let b = s.claim_bit(40, i * 0x9e3779b9).unwrap();
            assert!(seen.insert(b), "duplicate block {b}");
        }
        assert!(!s.reserve(40));
    }

    #[test]
    fn fill_and_free_lifecycle() {
        let s = Slab::new(64);
        s.try_assign(7, 8);
        assert_eq!(s.fill_pct(8), 0);
        s.reserve(8);
        let b = s.claim_bit(8, 0).unwrap();
        assert_eq!(s.fill_pct(8), 12);
        assert!(!s.try_free(), "non-empty slab stays");
        s.release_bit(b).unwrap();
        assert!(s.try_free());
        assert_eq!(s.class.load(Ordering::Relaxed), CLASS_FREE);
        assert!(s.try_assign(1, 60), "freed slab is reassignable");
    }

    #[test]
    fn hashed_probe_covers_all_words() {
        // Even with an adversarial hash the linear backstop finds the last
        // free bit.
        let s = Slab::new(96);
        s.try_assign(0, 96);
        for _ in 0..95 {
            s.reserve(96);
            s.claim_bit(96, 0).unwrap();
        }
        s.reserve(96);
        assert!(s.claim_bit(96, u64::MAX - 1).is_some(), "one bit left, must be found");
    }

    #[test]
    fn concurrent_claims_unique() {
        let s = std::sync::Arc::new(Slab::new(1024));
        s.try_assign(0, 1024);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for i in 0..256u64 {
                    if s.reserve(1024) {
                        got.push(s.claim_bit(1024, t * 777 + i).unwrap());
                    }
                }
                got
            }));
        }
        let mut all: Vec<u32> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
        assert_eq!(n, 1024);
    }
}

/// Model-checked interleaving suite (built with `RUSTFLAGS="--cfg loom"`).
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use gpumem_core::sync::{model, thread};
    use std::sync::Arc;

    /// Two racing `try_assign` calls: exactly one claims the slab, and the
    /// winner's bitmap init (invalid-tail pre-set) is what survives.
    #[test]
    fn assign_has_one_winner_and_clean_bitmap() {
        model(|| {
            let s = Arc::new(Slab::new(64));
            let spawn_assign = |class: u32| {
                let s = s.clone();
                thread::spawn(move || s.try_assign(class, 8))
            };
            let h1 = spawn_assign(1);
            let h2 = spawn_assign(2);
            let a = h1.join().unwrap();
            let b = h2.join().unwrap();
            assert!(a ^ b, "slab assigned twice (or not at all)");
            let class = s.class.load(Ordering::Acquire);
            assert!(class == 1 || class == 2);
            // 8 blocks in a 64-block bitmap: word 0 has bits 8.. pre-set
            // invalid, word 1 fully invalid.
            assert_eq!(s.bitmap[0].load(Ordering::Acquire), !0xFFu32);
            assert_eq!(s.bitmap[1].load(Ordering::Acquire), u32::MAX);
        });
    }

    /// `try_free` racing `reserve`: the count CAS 0→COUNT_LOCK and the
    /// reservation increment serialize — either the slab is freed (and the
    /// reservation failed) or the reservation won (and the free failed).
    /// This is the protocol whose *scatter* analogue had the real ordering
    /// bug: Halloc's version never touches the bitmap on free, so there is
    /// no window to clobber (contrast `alloc_scatter::page::loom_tests`).
    #[test]
    fn try_free_vs_reserve_serialize() {
        model(|| {
            let s = Arc::new(Slab::new(64));
            assert!(s.try_assign(3, 8));
            let freer = {
                let s = s.clone();
                thread::spawn(move || s.try_free())
            };
            let reserver = {
                let s = s.clone();
                thread::spawn(move || s.reserve(8))
            };
            let freed = freer.join().unwrap();
            let reserved = reserver.join().unwrap();
            if freed {
                let class = s.class.load(Ordering::Acquire);
                if reserved {
                    // Reservation won the count CAS *before* the free's
                    // 0→LOCK attempt could only fail... then freed=false.
                    // freed && reserved means the reserve landed after the
                    // count was restored to 0 — slab is free, count leaked
                    // reservation must still be coherent:
                    assert_eq!(s.count.load(Ordering::Acquire), 1);
                } else {
                    assert_eq!(class, CLASS_FREE);
                    assert_eq!(s.count.load(Ordering::Acquire), 0);
                }
            } else {
                assert!(reserved, "free failed so the reservation must have won");
                assert_eq!(s.count.load(Ordering::Acquire), 1);
            }
        });
    }

    /// Two threads race `claim_bit` with colliding hashes: distinct block
    /// indices, both within the 8 valid blocks.
    #[test]
    fn claim_bit_is_exclusive() {
        model(|| {
            let s = Arc::new(Slab::new(64));
            assert!(s.try_assign(0, 8));
            assert_eq!(s.reserve_many(8, 2), 2);
            let spawn_claim = || {
                let s = s.clone();
                thread::spawn(move || s.claim_bit(8, 0).expect("a bit is free"))
            };
            let h1 = spawn_claim();
            let h2 = spawn_claim();
            let a = h1.join().unwrap();
            let b = h2.join().unwrap();
            assert_ne!(a, b, "double-claimed block {a}");
            assert!(a < 8 && b < 8, "claimed an invalid tail bit: {a}, {b}");
        });
    }

    /// `release_bit` racing a fresh `claim_bit`: the released block is
    /// claimable exactly once and double-free is still detected.
    #[test]
    fn release_vs_claim_round_trips() {
        model(|| {
            let s = Arc::new(Slab::new(64));
            assert!(s.try_assign(0, 8));
            assert_eq!(s.reserve_many(8, 8), 8); // saturate: only block 2 free-able
            for b in 0..8u32 {
                if b != 2 {
                    assert!(s.bitmap[0].fetch_or(1 << b, Ordering::AcqRel) & (1 << b) == 0);
                }
            }
            s.bitmap[0].fetch_or(1 << 2, Ordering::AcqRel); // block 2 allocated too
            let releaser = {
                let s = s.clone();
                thread::spawn(move || s.release_bit(2).expect("first free succeeds"))
            };
            let claimer = {
                let s = s.clone();
                thread::spawn(move || s.claim_bit(8, 1))
            };
            releaser.join().unwrap();
            let got = claimer.join().unwrap();
            if let Some(b) = got {
                assert_eq!(b, 2, "only block 2 was ever free");
            }
            assert!(s.release_bit(5).is_ok());
            assert!(s.release_bit(5).is_err(), "double free undetected");
        });
    }
}
