//! Integration battery for the live telemetry subsystem: sink attachment
//! through the builder, the teardown ordering contract (drain magazines
//! before the final sample), and the full `watch` pipeline from scenario
//! run to schema-versioned exports.

use std::sync::Arc;
use std::time::Duration;

use gpumemsurvey::bench::matrix::{MatrixCfg, Tier};
use gpumemsurvey::bench::registry::ManagerKind;
use gpumemsurvey::bench::watch;
use gpumemsurvey::prelude::*;

const HEAP: u64 = 64 << 20;
const N: u32 = 512;

fn device() -> Device {
    Device::with_workers(DeviceSpec::titan_v(), 4)
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("gms_telemetry_{name}"));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Allocates then frees `N` same-class blocks through a `Cached`-wrapped
/// manager, so every free parks in (or evicts through) a magazine.
fn alloc_free_cycle(alloc: &Arc<dyn DeviceAllocator>) {
    let d = device();
    let ptrs = gpu_sim::PerThread::<DevicePtr>::new(N as usize);
    let a = Arc::clone(alloc);
    d.launch(N, |ctx| {
        let p = a.malloc(ctx, 64).expect("64 MiB heap fits 512×64 B");
        ptrs.set(ctx.thread_id as usize, p);
    });
    let ptrs = ptrs.into_vec();
    let a = Arc::clone(alloc);
    d.launch(N, |ctx| {
        a.free(ctx, ptrs[ctx.thread_id as usize]).unwrap();
    });
}

/// Satellite regression: frees parked in per-SM magazines are invisible to
/// the shared counters until `drain()` pushes them through the inner
/// allocator. A final telemetry sample taken *before* draining would
/// under-report frees, so the teardown order is drain → stop.
#[test]
fn magazine_frees_stay_parked_until_drain() {
    let sink = TelemetrySink::new();
    let alloc = ManagerKind::ScatterAlloc
        .builder()
        .heap(HEAP)
        .sms(8)
        .metrics(true)
        .cached(true)
        .telemetry(&sink)
        .build();
    assert_eq!(sink.len(), 1, "builder registers the counter block with the sink");

    // Slow cadence: no timer windows fire, every cut below is explicit.
    let tel = Telemetry::start(
        TelemetryConfig::new().interval(Duration::from_secs(3600)).capacity(64),
        sink,
    );

    alloc_free_cycle(&alloc);

    let before = alloc.metrics().snapshot();
    assert_eq!(before.malloc_calls(), u64::from(N));
    assert!(
        before.free_calls() < u64::from(N),
        "at least one free must still be parked in a magazine \
         (saw {} of {N} inner frees)",
        before.free_calls()
    );

    let drained = alloc.drain();
    assert!(drained > 0, "drain publishes the parked blocks");
    assert_eq!(
        before.free_calls() + drained,
        u64::from(N),
        "every caller free either evicted through or drained out of a magazine"
    );

    let series = tel.stop();
    assert_eq!(
        series.totals.free_calls(),
        u64::from(N),
        "final sample taken after drain sees complete free accounting"
    );
    assert_eq!(series.totals.live(), 0, "nothing live after a full cycle + drain");
    assert!(!series.samples.is_empty(), "stop() cuts a final window");
    let last = series.last().unwrap();
    assert_eq!(series.totals.malloc_calls(), u64::from(N));
    assert!(last.t_ms >= 0.0);
}

/// The sampler folds counter deltas per window: two explicit cuts around
/// a workload attribute the whole workload to the middle window, and the
/// series totals stay cumulative.
#[test]
fn explicit_cuts_window_the_counter_deltas() {
    let sink = TelemetrySink::new();
    let alloc =
        ManagerKind::Atomic.builder().heap(HEAP).sms(8).metrics(true).telemetry(&sink).build();
    let tel = Telemetry::start(
        TelemetryConfig::new().interval(Duration::from_secs(3600)).capacity(64),
        sink,
    );

    tel.sample_now(); // empty leading window
    let d = device();
    let a = Arc::clone(&alloc);
    d.launch(N, |ctx| {
        let _ = a.malloc(ctx, 128);
    });
    tel.sample_now(); // workload window
    let series = tel.stop(); // trailing window from stop()

    assert!(series.samples.len() >= 3, "two explicit cuts + the stop cut");
    assert_eq!(series.samples[0].malloc_ops, 0, "leading window saw nothing");
    let windowed: u64 = series.samples.iter().map(|s| s.malloc_ops).sum();
    assert_eq!(windowed, u64::from(N), "windows partition the op stream");
    assert_eq!(series.totals.malloc_calls(), u64::from(N));
    for w in series.samples.windows(2) {
        assert!(w[1].seq == w[0].seq + 1, "sample seq is dense");
        assert!(w[1].t_ms >= w[0].t_ms, "sample times are monotone");
    }
}

/// End-to-end `watch` pipeline — the one test that touches the
/// process-global sink (via `watch::watch` itself), so it must stay the
/// only one; a second concurrent installer would race it.
#[test]
fn watch_run_exports_schema_versioned_series() {
    let out = tmpdir("watch");
    let mut cfg = MatrixCfg::new(Tier::Tiny);
    cfg.kinds = Some(vec![ManagerKind::ScatterAlloc]);
    let tcfg =
        TelemetryConfig::new().hz(1000.0).slo("malloc_p99_ns<1@1ms".parse::<SloSpec>().unwrap());
    let outcome = watch::watch(cfg, "mixed", tcfg, None, &out).expect("watched mixed scenario");

    let s = &outcome.series;
    assert!(!s.samples.is_empty(), "sampler produced windows");
    assert!(s.totals.malloc_calls() > 0, "global sink captured the scenario's managers");
    assert!(
        s.samples.iter().any(|w| w.boundary),
        "launch hook cut at least one kernel-boundary window"
    );
    assert!(s.launches > 0, "boundary marks were folded into launch accounting");

    let json = std::fs::read_to_string(&outcome.json_path).unwrap();
    assert!(json.contains("\"schema\": 1"), "dump is schema-versioned");
    assert!(json.contains("\"kind\": \"gms-telemetry\""));
    assert!(json.contains("\"samples\""));

    let om = std::fs::read_to_string(&outcome.om_path).unwrap();
    let families = validate_openmetrics(&om).expect("exported exposition parses");
    assert!(families > 5, "exposition covers the metric families");

    let csv = std::fs::read_to_string(&outcome.csv_path).unwrap();
    let mut lines = csv.lines();
    assert!(lines.next().unwrap().starts_with('#'), "provenance comment leads");
    assert!(lines.next().unwrap().starts_with("seq,"), "then the sample header");
    assert_eq!(csv.lines().count(), s.samples.len() + 2, "one row per window");

    // An impossible SLO must be evaluated and breached.
    let slo = &s.slo[0];
    assert!(slo.windows_evaluated > 0);
    assert!(!slo.breaches.is_empty(), "p99 < 1 ns cannot hold");
    assert!(s.slo_table().contains("malloc_p99_ns"));

    // The global sink must be gone: later builds in this process stay
    // observability-free unless they opt in.
    let plain = ManagerKind::ScatterAlloc.builder().heap(HEAP).sms(8).build();
    assert!(!plain.metrics().is_enabled(), "watch cleaned up the global sink");

    let _ = std::fs::remove_dir_all(&out);
}
