//! End-to-end sanitizer battery.
//!
//! Two halves. First, deliberately broken mock allocators prove the shadow
//! heap actually catches each [`ViolationKind`] through the public trait —
//! and that it reports instead of panicking mid-"kernel". Second, every
//! evaluated manager runs a churn workload under [`Sanitized`] and must come
//! out clean, which is the repository-level guarantee behind the paper's
//! correctness claims (§5: which managers are stable under which workloads).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gpumemsurvey::bench::registry::DEFAULT_KINDS;
use gpumemsurvey::core::sanitize::{Sanitized, SanitizerConfig, ViolationKind};
use gpumemsurvey::core::util::align_up;
use gpumemsurvey::core::RegisterFootprint;
use gpumemsurvey::gpu_workloads::churn;
use gpumemsurvey::prelude::*;

/// What kind of bug the rigged allocator injects on its malloc path.
#[derive(Clone, Copy, PartialEq)]
enum Bug {
    /// Correct bump allocation (free-path bugs are triggered by the caller).
    None,
    /// Every allocation is the same region.
    SamePointer,
    /// Returns a pointer at the very end of the heap.
    PastEnd,
    /// Returns pointers 8 bytes off the declared 16-byte alignment.
    OffByEight,
}

/// Minimal bump allocator with a selectable defect, used as the inner
/// manager under test. Its `free` accepts anything — the sanitizer must
/// reject bad frees *before* the inner manager sees them.
struct Rigged {
    heap: Arc<DeviceHeap>,
    top: AtomicU64,
    bug: Bug,
}

impl Rigged {
    fn new(bug: Bug) -> Self {
        Rigged { heap: Arc::new(DeviceHeap::new(1 << 20)), top: AtomicU64::new(0), bug }
    }
}

impl DeviceAllocator for Rigged {
    fn info(&self) -> ManagerInfo {
        ManagerInfo::builder("Rigged").build()
    }
    fn heap(&self) -> &DeviceHeap {
        &self.heap
    }
    fn malloc(&self, _ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        match self.bug {
            Bug::SamePointer => return Ok(DevicePtr::new(64)),
            Bug::PastEnd => return Ok(DevicePtr::new(self.heap.len())),
            Bug::OffByEight => {
                let off = self.top.fetch_add(align_up(size + 8, 16), Ordering::Relaxed);
                return Ok(DevicePtr::new(off + 8));
            }
            Bug::None => {}
        }
        let sz = align_up(size.max(1), 16);
        let off = self.top.fetch_add(sz, Ordering::Relaxed);
        if off + sz > self.heap.len() {
            return Err(AllocError::OutOfMemory(size));
        }
        Ok(DevicePtr::new(off))
    }
    fn free(&self, _ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
        if ptr.is_null() {
            return Err(AllocError::InvalidPointer);
        }
        Ok(())
    }
    fn register_footprint(&self) -> RegisterFootprint {
        RegisterFootprint { malloc: 1, free: 1 }
    }
}

fn ctx() -> ThreadCtx {
    ThreadCtx::host()
}

#[test]
fn overlap_is_detected_end_to_end() {
    let san = Sanitized::new(Rigged::new(Bug::SamePointer));
    let a = san.malloc(&ctx(), 128).unwrap();
    let b = san.malloc(&ctx(), 128).unwrap();
    assert_eq!(a, b, "the rig hands out one region twice");
    let report = san.report();
    assert_eq!(report.by_kind(ViolationKind::Overlap), 1, "{report}");
    assert_eq!(report.recorded[0].offset, 64);
}

#[test]
fn out_of_heap_return_is_detected_end_to_end() {
    let san = Sanitized::new(Rigged::new(Bug::PastEnd));
    // Must not panic even though the pointer cannot be dereferenced.
    let _ = san.malloc(&ctx(), 64).unwrap();
    let report = san.report();
    assert_eq!(report.by_kind(ViolationKind::OutOfHeap), 1, "{report}");
}

#[test]
fn misaligned_return_is_detected_end_to_end() {
    let san = Sanitized::new(Rigged::new(Bug::OffByEight));
    let _ = san.malloc(&ctx(), 64).unwrap();
    let report = san.report();
    assert_eq!(report.by_kind(ViolationKind::Misaligned), 1, "{report}");
}

#[test]
fn double_free_and_unknown_free_are_detected_end_to_end() {
    let san = Sanitized::new(Rigged::new(Bug::None));
    let p = san.malloc(&ctx(), 256).unwrap();
    assert!(san.free(&ctx(), p).is_ok());
    assert_eq!(san.free(&ctx(), p), Err(AllocError::InvalidPointer), "second free rejected");
    assert_eq!(
        san.free(&ctx(), DevicePtr::new(512 * 1024)),
        Err(AllocError::InvalidPointer),
        "never-allocated pointer rejected"
    );
    let report = san.report();
    assert_eq!(report.by_kind(ViolationKind::DoubleFree), 1, "{report}");
    assert_eq!(report.by_kind(ViolationKind::UnknownFree), 1, "{report}");
}

#[test]
fn redzone_corruption_is_detected_end_to_end() {
    let cfg = SanitizerConfig::default();
    assert!(cfg.redzone > 0);
    let san = Sanitized::with_config(Rigged::new(Bug::None), cfg);
    let p = san.malloc(&ctx(), 64).unwrap();
    // The workload writes one byte past its request, into the canary.
    san.heap().fill(p.add(64), 1, 0xff);
    let _ = san.free(&ctx(), p);
    let report = san.report();
    assert_eq!(report.by_kind(ViolationKind::RedzoneCorrupt), 1, "{report}");
    assert_eq!(report.recorded[0].conflict, Some(p.offset() + 64));
}

#[test]
fn violations_are_reported_not_panicked() {
    // A stack of defects in one run: the sanitizer keeps serving the
    // workload and aggregates everything host-side.
    let san = Sanitized::new(Rigged::new(Bug::SamePointer));
    for _ in 0..50 {
        let _ = san.malloc(&ctx(), 32);
    }
    let _ = san.free(&ctx(), DevicePtr::new(1 << 19));
    let report = san.take_report();
    assert!(!report.is_clean());
    assert_eq!(report.by_kind(ViolationKind::Overlap), 49);
    assert_eq!(report.by_kind(ViolationKind::UnknownFree), 1);
    assert_eq!(report.total(), 50, "{report}");
}

#[test]
fn every_default_manager_is_clean_under_sanitized_churn() {
    let device = Device::with_workers(DeviceSpec::titan_v(), 2);
    for kind in DEFAULT_KINDS {
        let alloc = kind.builder().heap(64 << 20).sms(80).build();
        let san = Sanitized::new(alloc);
        churn::run(&san, &device, 256, 64, 4);
        let report = san.take_report();
        assert!(report.is_clean(), "{}: {report}", kind.label());
        if san.info().supports_free {
            assert_eq!(report.live, 0, "{}: churn must drain fully", kind.label());
        }
    }
}

/// Same battery with the magazine cache between the sanitizer and every
/// manager (`Sanitized<Cached<A>>`). The sanitizer wraps outside, so a
/// parked free must retire its shadow entry exactly like a real one and a
/// magazine hit must re-admit the recycled block cleanly — caching must be
/// invisible to the shadow heap across all families, including those where
/// the cache disables itself (no-free and warp-level-only managers).
#[test]
fn every_default_manager_is_clean_under_sanitized_cached_churn() {
    let device = Device::with_workers(DeviceSpec::titan_v(), 2);
    for kind in DEFAULT_KINDS {
        let alloc = kind.builder().heap(64 << 20).sms(80).cached(true).build();
        let san = Sanitized::new(alloc);
        churn::run(&san, &device, 256, 64, 4);
        let report = san.take_report();
        assert!(report.is_clean(), "{} (cached): {report}", kind.label());
        if san.info().supports_free {
            assert_eq!(report.live, 0, "{} (cached): churn must drain fully", kind.label());
        }
    }
}
