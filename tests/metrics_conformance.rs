//! Conformance battery for the contention-observability layer: one set of
//! accounting laws, executed black-box against every evaluated manager.
//!
//! The laws:
//!
//! 1. **Call-accounting identity** — after any sequence of operations,
//!    `malloc_calls == malloc_failures + (free_calls − free_failures) + live`.
//! 2. **Zero when disabled** — a manager built without metrics reports an
//!    all-zero snapshot no matter what runs on it.
//! 3. **Monotone snapshots** — concurrent launches never make any counter
//!    go backwards between two readings of the same handle.

use std::sync::Arc;

use gpumemsurvey::bench::registry::{ManagerKind, ALL_KINDS, DEFAULT_KINDS};
use gpumemsurvey::prelude::*;

const HEAP: u64 = 64 << 20;
const N: u32 = 2_000;

fn device() -> Device {
    Device::with_workers(DeviceSpec::titan_v(), 4)
}

/// Allocates `n` blocks of `size` on the device, returning the survivors.
fn alloc_phase(
    device: &Device,
    alloc: &Arc<dyn DeviceAllocator>,
    n: u32,
    size: u64,
) -> Vec<DevicePtr> {
    let ptrs = gpu_sim::PerThread::<DevicePtr>::new(n as usize);
    let a = Arc::clone(alloc);
    device.launch(n, |ctx| match a.malloc(ctx, size) {
        Ok(p) => ptrs.set(ctx.thread_id as usize, p),
        Err(_) => ptrs.set(ctx.thread_id as usize, DevicePtr::NULL),
    });
    ptrs.into_vec()
}

fn free_phase(device: &Device, alloc: &Arc<dyn DeviceAllocator>, ptrs: &[DevicePtr]) {
    let a = Arc::clone(alloc);
    if a.info().warp_level_only {
        device.launch_warps((ptrs.len() as u32).div_ceil(32), |w| {
            let _ = a.free_warp_all(w);
        });
    } else if a.info().supports_free {
        device.launch(ptrs.len() as u32, |ctx| {
            let p = ptrs[ctx.thread_id as usize];
            if !p.is_null() {
                let _ = a.free(ctx, p);
            }
        });
    }
}

#[test]
fn call_accounting_identity_after_alloc_only() {
    for kind in ALL_KINDS {
        let alloc = kind.builder().heap(HEAP).sms(80).metrics(true).build();
        let d = device();
        let ptrs = alloc_phase(&d, &alloc, N, 32);
        let s = alloc.metrics().snapshot();
        let failures = ptrs.iter().filter(|p| p.is_null()).count() as u64;
        assert_eq!(s.malloc_calls(), N as u64, "{kind}: every request counted once");
        assert_eq!(s.malloc_failures(), failures, "{kind}: failures counted exactly");
        assert_eq!(
            s.live(),
            N as u64 - failures,
            "{kind}: live = successes while nothing is freed"
        );
        assert_eq!(
            s.malloc_calls(),
            s.malloc_failures() + (s.free_calls() - s.free_failures()) + s.live(),
            "{kind}: call-accounting identity"
        );
    }
}

#[test]
fn call_accounting_identity_after_alloc_free_cycle() {
    for kind in DEFAULT_KINDS {
        let alloc = kind.builder().heap(HEAP).sms(80).metrics(true).build();
        let d = device();
        let ptrs = alloc_phase(&d, &alloc, N, 48);
        free_phase(&d, &alloc, &ptrs);
        let s = alloc.metrics().snapshot();
        assert_eq!(s.malloc_calls(), N as u64, "{kind}");
        assert_eq!(
            s.malloc_calls(),
            s.malloc_failures() + (s.free_calls() - s.free_failures()) + s.live(),
            "{kind}: identity after free cycle"
        );
        if alloc.info().supports_free {
            assert_eq!(s.live(), 0, "{kind}: everything allocated was freed");
        }
    }
}

#[test]
fn disabled_metrics_record_nothing() {
    for kind in ALL_KINDS {
        let alloc = kind.builder().heap(HEAP).sms(80).build();
        assert!(!alloc.metrics().is_enabled(), "{kind}: disabled by default");
        let d = device();
        let ptrs = alloc_phase(&d, &alloc, N, 64);
        free_phase(&d, &alloc, &ptrs);
        let s = alloc.metrics().snapshot();
        assert!(s.is_zero(), "{kind}: disabled handle must stay all-zero");
    }
}

#[test]
fn snapshots_are_monotone_under_concurrent_launches() {
    // Two devices launching into one manager while a third thread takes
    // rapid-fire snapshots: every later reading must dominate every
    // earlier one.
    let alloc = ManagerKind::ScatterAlloc.builder().heap(HEAP).sms(80).metrics(true).build();
    let m = alloc.metrics();
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let watcher = scope.spawn(|| {
            let mut last = m.snapshot();
            let mut readings = 0u32;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let now = m.snapshot();
                assert!(now.dominates(&last), "counter went backwards");
                last = now;
                readings += 1;
            }
            readings
        });
        for _ in 0..2 {
            let d = device();
            let ptrs = alloc_phase(&d, &alloc, N, 32);
            free_phase(&d, &alloc, &ptrs);
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        assert!(watcher.join().unwrap() > 0);
    });
    // After the launches the identity still holds on the final reading.
    let s = m.snapshot();
    assert_eq!(
        s.malloc_calls(),
        s.malloc_failures() + (s.free_calls() - s.free_failures()) + s.live()
    );
}

#[test]
fn launch_observed_reports_per_launch_deltas() {
    let alloc = ManagerKind::RegEffC.builder().heap(HEAP).sms(80).metrics(true).build();
    let d = device();
    let a = Arc::clone(&alloc);
    let report = d.launch_observed(&alloc.metrics(), N, |ctx| {
        let _ = a.malloc(ctx, 32);
    });
    assert_eq!(report.counters.malloc_calls(), N as u64);
    // A second, smaller launch reports only its own delta.
    let a = Arc::clone(&alloc);
    let report2 = d.launch_observed(&alloc.metrics(), N / 2, |ctx| {
        let _ = a.malloc(ctx, 32);
    });
    assert_eq!(report2.counters.malloc_calls(), (N / 2) as u64);
}

#[test]
fn concurrent_launches_do_not_cross_contaminate_deltas() {
    // Regression: `launch_observed` used to take its before/after
    // snapshots around an un-serialized launch, so two threads sharing
    // one Metrics handle interleaved and each launch's delta absorbed
    // part of the other's counts. The executor's launch gate now scopes
    // snapshot–launch–snapshot atomically; every reported delta must
    // equal exactly its own launch's op count.
    let alloc = ManagerKind::ScatterAlloc.builder().heap(HEAP).sms(80).metrics(true).build();
    let d = device();
    let counts: Vec<u32> = (0..4u32).map(|i| N / 2 + i * 100).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = counts
            .iter()
            .map(|&n| {
                let alloc = Arc::clone(&alloc);
                let d = &d;
                scope.spawn(move || {
                    let a = Arc::clone(&alloc);
                    let report = d.launch_observed(&alloc.metrics(), n, move |ctx| {
                        let _ = a.malloc(ctx, 32);
                    });
                    (n, report)
                })
            })
            .collect();
        for h in handles {
            let (n, report) = h.join().unwrap();
            assert_eq!(
                report.counters.malloc_calls(),
                u64::from(n),
                "delta must contain exactly this launch's {n} calls"
            );
        }
    });
    // The shared handle still accumulated the global total.
    let total: u64 = counts.iter().map(|&n| u64::from(n)).sum();
    assert_eq!(alloc.metrics().snapshot().malloc_calls(), total);
}

#[test]
fn structural_counters_fire_for_their_families() {
    // ScatterAlloc's hashed probing must report probe steps (and, with
    // hash collisions on partially filled pages, lost claims).
    let d = device();
    let scatter = ManagerKind::ScatterAlloc.builder().heap(HEAP).sms(80).metrics(true).build();
    let ptrs = alloc_phase(&d, &scatter, N, 16);
    free_phase(&d, &scatter, &ptrs);
    let s = scatter.metrics().snapshot();
    assert!(s.probe_steps() > 0, "ScatterAlloc probes pages per request");
    assert!(s.cas_retries() > 0, "hashed spots collide on filled pages");

    // Every Ouroboros variant re-spins its index queue at least on the
    // initial empty-queue expansion.
    for kind in [ManagerKind::OuroSP, ManagerKind::OuroVAC] {
        let ouro = kind.builder().heap(HEAP).sms(80).metrics(true).build();
        let ptrs = alloc_phase(&d, &ouro, N, 16);
        free_phase(&d, &ouro, &ptrs);
        let s = ouro.metrics().snapshot();
        assert!(s.queue_spins() > 0, "{kind}: queue activity must register");
    }
}
