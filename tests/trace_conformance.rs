//! Conformance battery for the event-tracing layer (PR: per-SM ring-buffer
//! trace recorder + derived views).
//!
//! The acceptance surface, executed black-box through the public API:
//!
//! 1. **End-to-end export** — a traced run emits Chrome trace-event JSON
//!    that validates (array of objects, each carrying `ph`/`ts`/`pid`/`tid`)
//!    and latency histograms with non-zero p50/p95/p99 for malloc and free.
//! 2. **Opt-in only** — a manager built without `.trace(...)` has no
//!    recorder attached and records zero events no matter what runs.
//! 3. **No cost when disabled** — the tracer hook on the metrics record
//!    path is one `Option` discriminant check; a release-mode nanobench
//!    bounds the per-op cost (same style as the executor's
//!    timing-fidelity test, ignored in debug builds).

use std::sync::Arc;
use std::time::{Duration, Instant};

use gpumemsurvey::bench::registry::ManagerKind;
use gpumemsurvey::bench::runners::{self, Bench};
use gpumemsurvey::core::trace::DEFAULT_EVENTS_PER_SM;
use gpumemsurvey::core::{validate_chrome_json, EventKind, TraceRecorder};
use gpumemsurvey::prelude::*;

const N: u32 = 4096;

fn bench() -> Bench {
    Bench::new(Device::with_workers(DeviceSpec::titan_v(), 4))
}

#[test]
fn traced_run_exports_valid_chrome_json_with_nonzero_percentiles() {
    let b = bench();
    let r = runners::trace_profile(&b, ManagerKind::ScatterAlloc, N, DEFAULT_EVENTS_PER_SM);

    let json_events = validate_chrome_json(&r.json).expect("export must be valid Chrome JSON");
    assert!(json_events > 0, "export must contain events");

    assert_eq!(r.latencies.malloc.count(), u64::from(N), "one MallocEnd per thread");
    assert_eq!(r.latencies.free.count(), u64::from(N), "one FreeEnd per thread");
    for (op, h) in [("malloc", &r.latencies.malloc), ("free", &r.latencies.free)] {
        assert!(h.p50() > 0 && h.p95() > 0 && h.p99() > 0, "{op}: percentiles must be non-zero");
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99(), "{op}: percentiles must be ordered");
        assert!(h.p99() <= h.max_ns(), "{op}: p99 bounded by the observed max");
    }

    // The occupancy timeline replays the same stream into a consistent
    // heap-usage curve: every thread allocated then freed, so the peak is
    // positive, bounded by the thread count, and the final sample is empty.
    assert!(r.occupancy.peak_live_bytes > 0);
    assert!(r.occupancy.peak_live_allocs > 0 && r.occupancy.peak_live_allocs <= u64::from(N));
    assert_eq!(r.occupancy.unmatched_frees, 0, "every free matches a traced malloc");
    let last = r.occupancy.samples.last().expect("timeline has samples");
    assert_eq!((last.live_bytes, last.live_allocs), (0, 0), "run ends with an empty heap");
}

#[test]
fn warp_level_manager_traces_collective_frees() {
    // FDGMalloc has no per-pointer free; its bulk `free_warp_all` path must
    // still produce FreeEnd events with non-zero latency.
    let b = bench();
    let r = runners::trace_profile(&b, ManagerKind::FDGMalloc, N, DEFAULT_EVENTS_PER_SM);
    validate_chrome_json(&r.json).expect("warp-level export must validate");
    assert!(r.latencies.malloc.count() > 0);
    assert!(r.latencies.free.count() > 0, "bulk frees must be traced");
    assert!(r.latencies.free.p50() > 0);
}

#[test]
fn builder_without_trace_attaches_no_recorder_and_records_nothing() {
    let alloc = ManagerKind::ScatterAlloc.builder().heap(64 << 20).sms(80).metrics(true).build();
    assert!(alloc.metrics().tracer().is_none(), "tracing is strictly opt-in");

    // A bystander recorder sees nothing from an untraced run: events only
    // flow through an explicitly attached tracer.
    let bystander = TraceRecorder::new(80, 256);
    let d = Device::with_workers(DeviceSpec::titan_v(), 4);
    let a = Arc::clone(&alloc);
    let report = d.launch_observed(&alloc.metrics(), N, move |ctx| {
        let _ = a.malloc(ctx, 64);
    });
    assert_eq!(report.counters.malloc_calls(), u64::from(N), "metrics still work untraced");
    assert_eq!(bystander.recorded(), 0, "recorded event count must be 0 with tracing disabled");
    assert!(bystander.snapshot().is_empty());
    assert!(alloc.metrics().tracer().is_none(), "launches never attach tracers");
}

#[test]
fn traced_launch_emits_lifecycle_events() {
    // `launch_observed` on a traced manager brackets the run with
    // LaunchBegin/End and per-warp Dispatched/Retired markers.
    let alloc = ManagerKind::ScatterAlloc.builder().heap(64 << 20).sms(80).trace(true).build();
    let m = alloc.metrics();
    let d = Device::with_workers(DeviceSpec::titan_v(), 4);
    let a = Arc::clone(&alloc);
    d.launch_observed(&m, 256, move |ctx| {
        let _ = a.malloc(ctx, 32);
    });
    let trace = m.tracer().expect("trace(true) attaches a recorder").snapshot();
    let warps = 256usize.div_ceil(32);
    assert_eq!(trace.count(EventKind::LaunchBegin), 1);
    assert_eq!(trace.count(EventKind::LaunchEnd), 1);
    assert_eq!(trace.count(EventKind::WarpDispatched), warps);
    assert_eq!(trace.count(EventKind::WarpRetired), warps);
    assert_eq!(trace.count(EventKind::MallocBegin), 256);
    assert_eq!(trace.count(EventKind::MallocEnd), 256);
}

/// Overhead guard: with tracing disabled, the metrics record path must add
/// no measurable cost. Minima over repeated trials filter scheduler noise;
/// the bounds are generous multiples of what a branch-plus-increment can
/// cost so the guard only fires on a real regression (e.g. an
/// unconditional clock read or allocation sneaking into the hot path).
#[cfg_attr(debug_assertions, ignore = "per-op timing bound: release-only (scripts/check.sh)")]
#[test]
fn disabled_tracing_adds_no_measurable_record_cost() {
    const OPS: u32 = 1_000_000;
    let per_op_ns = |m: &Metrics| {
        let mut best = Duration::MAX;
        for _ in 0..5 {
            let t = Instant::now();
            for i in 0..OPS {
                m.add(i % 8, Counter::CasRetries, 1);
                m.record_retries(i % 8, 1);
            }
            best = best.min(t.elapsed());
        }
        best.as_nanos() as f64 / f64::from(OPS)
    };
    // Fully disabled handle: two `Option` checks, nothing else.
    let disabled = per_op_ns(&Metrics::disabled());
    assert!(disabled < 20.0, "disabled record path costs {disabled:.2} ns/op (want < 20)");
    // Enabled counters without a tracer: the tracer hook must not add
    // beyond the sharded increments themselves.
    let untraced = per_op_ns(&Metrics::enabled(8));
    assert!(untraced < 200.0, "untraced record path costs {untraced:.2} ns/op (want < 200)");
}

/// Edge case: replaying an empty stream must yield an empty, all-zero
/// timeline — no phantom sample, no peak, no address range.
#[test]
fn occupancy_timeline_of_empty_stream_is_empty() {
    let rec = TraceRecorder::new(4, 16);
    let tl = occupancy_timeline(&rec.snapshot(), 64);
    assert!(tl.samples.is_empty(), "no events, no samples");
    assert_eq!(tl.peak_live_bytes, 0);
    assert_eq!(tl.peak_live_allocs, 0);
    assert_eq!(tl.unmatched_frees, 0);
    assert_eq!(tl.address_range.range(), 0);
}

/// Edge case: a `FreeEnd` whose pointer the replay never saw allocated
/// (ring drop ate the `MallocEnd`, or a collective bulk free) must count
/// as unmatched, never underflow the live curve, and must not poison the
/// later matched cycle on the same address.
#[test]
fn occupancy_timeline_counts_free_before_malloc_as_unmatched() {
    let rec = TraceRecorder::new(4, 16);
    rec.emit_at(10, 0, EventKind::FreeEnd, [0x40, 5, 0, 1]); // never allocated
    rec.emit_at(20, 0, EventKind::MallocEnd, [0x40, 64, 5, 0]);
    rec.emit_at(30, 0, EventKind::FreeEnd, [0x40, 5, 0, 1]); // matches the malloc
    let tl = occupancy_timeline(&rec.snapshot(), 64);
    assert_eq!(tl.unmatched_frees, 1, "only the early free is unmatched");
    assert_eq!(tl.samples.len(), 3, "every replayed event samples the curve");
    assert_eq!(
        (tl.samples[0].live_bytes, tl.samples[0].live_allocs),
        (0, 0),
        "unmatched free must not underflow"
    );
    assert_eq!(tl.peak_live_bytes, 64);
    let last = tl.samples.last().unwrap();
    assert_eq!((last.live_bytes, last.live_allocs), (0, 0), "matched cycle still balances");
}

/// Edge case: a shard filled to *exactly* its capacity records everything
/// and drops nothing; the next event hits drop-newest backpressure and
/// must be invisible to the replay (counted in `dropped()`, absent from
/// the timeline) rather than corrupting it.
#[test]
fn occupancy_timeline_survives_ring_wrap_at_exact_capacity() {
    let cap = 8usize;
    let rec = TraceRecorder::new(1, cap);
    for i in 0..cap as u64 {
        rec.emit_at(10 + i, 0, EventKind::MallocEnd, [0x100 + i * 64, 64, 5, 0]);
    }
    assert_eq!(rec.recorded(), cap as u64, "exact fill commits every slot");
    assert_eq!(rec.dropped(), 0, "exact fill drops nothing");
    let tl = occupancy_timeline(&rec.snapshot(), cap * 2);
    assert_eq!(tl.samples.len(), cap);
    assert_eq!(tl.peak_live_allocs, cap as u64);

    rec.emit_at(99, 0, EventKind::FreeEnd, [0x100, 5, 0, 1]); // one past capacity
    assert_eq!(rec.dropped(), 1, "overflow is drop-newest, and it is counted");
    let tl2 = occupancy_timeline(&rec.snapshot(), cap * 2);
    assert_eq!(tl2.samples.len(), cap, "the dropped event never reaches the replay");
    assert_eq!(tl2.peak_live_allocs, cap as u64, "live curve unchanged by the drop");
    assert_eq!(tl2.unmatched_frees, 0);

    // Decimation keeps the (strided) shape and always the final state.
    let thin = occupancy_timeline(&rec.snapshot(), 2);
    assert!(thin.samples.len() <= 3, "decimated to ~max_samples");
    assert_eq!(thin.samples.last(), tl.samples.last(), "final state always kept");
}
