//! Cross-crate integration tests: every manager driven through the full
//! simulated-device stack (executor → allocator → heap → workloads).

use gpumemsurvey::bench::registry::{ManagerKind, DEFAULT_KINDS};
use gpumemsurvey::bench::runners;
use gpumemsurvey::gpu_sim::PerThread;
use gpumemsurvey::prelude::*;

fn device() -> Device {
    Device::with_workers(DeviceSpec::titan_v(), 4)
}

/// Every manager serves a full kernel of mixed-size allocations; payloads
/// are written and verified, then everything is freed and reallocated.
#[test]
fn full_stack_mixed_kernel_every_manager() {
    let device = device();
    const N: u32 = 4096;
    for kind in DEFAULT_KINDS {
        let alloc = kind.builder().heap(128 << 20).sms(device.spec().num_sms).build();
        let heap = alloc.heap();
        let ptrs = PerThread::<DevicePtr>::new(N as usize);
        let sizes = PerThread::<u64>::new(N as usize);

        device.launch(N, |ctx| {
            let size = 16 + (ctx.thread_id as u64 % 64) * 16;
            let p = alloc.malloc(ctx, size).unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
            heap.fill(p, size, (ctx.thread_id % 251) as u8);
            ptrs.set(ctx.thread_id as usize, p);
            sizes.set(ctx.thread_id as usize, size);
        });

        // Host-side verification: payload intact, no overlap.
        let ptrs = ptrs.into_vec();
        let sizes = sizes.into_vec();
        let mut spans: Vec<(u64, u64, u32)> = Vec::new();
        for t in 0..N as usize {
            assert_eq!(
                heap.read_u8(ptrs[t], sizes[t] - 1),
                (t as u32 % 251) as u8,
                "{}: thread {t} payload corrupted",
                kind.label()
            );
            spans.push((ptrs[t].offset(), sizes[t], t as u32));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(
                w[0].0 + w[0].1 <= w[1].0,
                "{}: threads {} and {} overlap",
                kind.label(),
                w[0].2,
                w[1].2
            );
        }

        // Free phase (managers without free skip it).
        if alloc.info().supports_free {
            device.launch(N, |ctx| {
                alloc
                    .free(ctx, ptrs[ctx.thread_id as usize])
                    .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
            });
            // Memory is reusable.
            let p = alloc.malloc(&ThreadCtx::host(), 1024).unwrap();
            assert!(!p.is_null());
        }
    }
}

/// The smoke helper the quickstart builds on must pass for every kind,
/// including the warp-level-only FDGMalloc.
#[test]
fn smoke_all_kinds_including_fdg() {
    for kind in gpumemsurvey::bench::registry::ALL_KINDS {
        let alloc = kind.builder().heap(64 << 20).sms(80).build();
        runners::smoke_test(alloc.as_ref()).unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
    }
}

/// Warp-collective allocation works for every manager through the default
/// or specialised `malloc_warp` path.
#[test]
fn warp_collective_allocation_every_manager() {
    let device = device();
    for kind in DEFAULT_KINDS {
        let alloc = kind.builder().heap(64 << 20).sms(device.spec().num_sms).build();
        let ok = std::sync::atomic::AtomicU32::new(0);
        device.launch_warps(128, |w| {
            let sizes = [96u64; 32];
            let mut out = [DevicePtr::NULL; 32];
            if alloc.malloc_warp(w, &sizes, &mut out).is_ok() && out.iter().all(|p| !p.is_null()) {
                ok.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        });
        assert_eq!(ok.load(std::sync::atomic::Ordering::Relaxed), 128, "{}", kind.label());
    }
}

/// Work generation against the prefix-sum baseline completes with zero
/// failures for the paper's recommended managers.
#[test]
fn workgen_integration() {
    let bench = runners::Bench::new(device());
    for kind in [ManagerKind::ScatterAlloc, ManagerKind::Halloc, ManagerKind::OuroSP] {
        let c = runners::work_generation(&bench, kind, 8192, 4, 64);
        assert_eq!(c.failures, 0, "{}", kind.label());
    }
    let b = runners::work_generation_baseline(&bench, 8192, 4, 64);
    assert_eq!(b.failures, 0);
}

/// Graph init → update → destroy across three managers, with content
/// validation after churn.
#[test]
fn graph_lifecycle_integration() {
    let device = device();
    let csr = gpumemsurvey::dyn_graph::generate("coAuthorsCiteseer", 128, 3);
    for kind in [ManagerKind::OuroVAC, ManagerKind::ScatterAlloc, ManagerKind::Halloc] {
        let alloc = kind.builder().heap(256 << 20).sms(device.spec().num_sms).build();
        let (g, _) = gpumemsurvey::dyn_graph::DynGraph::init(alloc.as_ref(), &device, &csr);
        assert_eq!(g.failures(), 0, "{}", kind.label());
        let edges = gpumemsurvey::dyn_graph::focused_edges(csr.vertices(), 10_000, 20, 5);
        g.insert_edges(&device, &edges);
        assert_eq!(g.failures(), 0, "{}", kind.label());
        assert_eq!(g.total_edges(), csr.edges() + 10_000, "{}", kind.label());
        // Spot-check an untouched vertex's adjacency survived the churn.
        let v = csr.vertices() - 1;
        assert_eq!(g.adjacency(v)[..csr.degree(v) as usize], *csr.neighbors(v));
        g.destroy(&device);
    }
}

/// The fragmentation instrumentation sees the Atomic baseline as perfectly
/// packed and every real manager at ≥ 1×.
#[test]
fn fragmentation_sanity_across_managers() {
    let bench = runners::Bench::new(device());
    let atomic = runners::fragmentation(&bench, ManagerKind::Atomic, 2048, 64, 0);
    assert_eq!(atomic.initial.address_range, atomic.initial.baseline);
    for kind in [ManagerKind::OuroSP, ManagerKind::Halloc, ManagerKind::RegEffC] {
        let c = runners::fragmentation(&bench, kind, 2048, 64, 2);
        assert!(
            c.initial.expansion_factor() >= 0.99,
            "{}: {}",
            kind.label(),
            c.initial.expansion_factor()
        );
        assert!(c.initial.allocations == 2048, "{}", kind.label());
    }
}
