//! Property-based tests: allocator invariants under arbitrary operation
//! sequences, for every evaluated manager.
//!
//! The model: a random interleaving of `Malloc(size)` and `Free(i)` (freeing
//! the i-th oldest live allocation). After every step the live set must
//! satisfy:
//!
//! 1. no two live allocations overlap;
//! 2. every pointer is in bounds (`ptr + size ≤ heap.len()`);
//! 3. every pointer satisfies the manager's declared alignment;
//! 4. OOM is an error return, never corruption — and after freeing
//!    everything, allocation succeeds again.
//!
//! Every sequence additionally runs through the shadow-heap sanitizer
//! (`core::sanitize`), whose occupancy bitmap and free-history catch
//! overlap/bounds/alignment/free-path violations the model below might
//! miss (e.g. an overlap with a redzone, or a stale recycled pointer);
//! the run must end with a clean sanitizer report.

use proptest::prelude::*;

use gpumemsurvey::bench::registry::ManagerKind;
use gpumemsurvey::core::sanitize::Sanitized;
use gpumemsurvey::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Malloc(u64),
    Free(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u64..9000).prop_map(Op::Malloc),
        2 => (0usize..64).prop_map(Op::Free),
    ]
}

fn check_invariants(kind: ManagerKind, ops: &[Op]) -> Result<(), TestCaseError> {
    let alloc = Sanitized::new(kind.builder().heap(32 << 20).sms(80).build());
    let info = alloc.info();
    let ctx = ThreadCtx::host();
    // (ptr, size) of live allocations, oldest first.
    let mut live: Vec<(DevicePtr, u64)> = Vec::new();

    for op in ops {
        match *op {
            Op::Malloc(size) => match alloc.malloc(&ctx, size) {
                Ok(p) => {
                    prop_assert_ne!(p, DevicePtr::NULL);
                    prop_assert!(
                        p.offset() + size <= alloc.heap().len(),
                        "{}: out of bounds: {:?}+{}",
                        info.label(),
                        p,
                        size
                    );
                    prop_assert!(
                        p.is_aligned(info.alignment),
                        "{}: misaligned: {:?} (declared {})",
                        info.label(),
                        p,
                        info.alignment
                    );
                    // Overlap check against the live set.
                    for &(q, qs) in &live {
                        let disjoint =
                            p.offset() + size <= q.offset() || q.offset() + qs <= p.offset();
                        prop_assert!(
                            disjoint,
                            "{}: overlap: {:?}+{} vs {:?}+{}",
                            info.label(),
                            p,
                            size,
                            q,
                            qs
                        );
                    }
                    live.push((p, size));
                }
                Err(AllocError::OutOfMemory(_)) => {} // legitimate under churn
                Err(e) => prop_assert!(false, "{}: unexpected error {e}", info.label()),
            },
            Op::Free(i) => {
                if !live.is_empty() && info.supports_free {
                    let (p, _) = live.remove(i % live.len());
                    let r = alloc.free(&ctx, p);
                    prop_assert!(r.is_ok(), "{}: free failed: {r:?}", info.label());
                }
            }
        }
    }

    // Drain and verify the manager recovers.
    if info.supports_free {
        for (p, _) in live.drain(..) {
            alloc.free(&ctx, p).expect("draining valid pointers");
        }
        prop_assert!(
            alloc.malloc(&ctx, 64).is_ok(),
            "{}: cannot allocate after full drain",
            info.label()
        );
    }
    let report = alloc.take_report();
    prop_assert!(report.is_clean(), "{}: sanitizer found {report}", info.label());
    Ok(())
}

macro_rules! allocator_properties {
    ($($name:ident => $kind:expr),+ $(,)?) => {
        $(
            proptest! {
                #![proptest_config(ProptestConfig {
                    cases: 24,
                    max_shrink_iters: 200,
                })]
                #[test]
                fn $name(ops in proptest::collection::vec(op_strategy(), 1..120)) {
                    check_invariants($kind, &ops)?;
                }
            }
        )+
    };
}

allocator_properties! {
    props_cuda_allocator => ManagerKind::CudaAllocator,
    props_xmalloc => ManagerKind::XMalloc,
    props_scatteralloc => ManagerKind::ScatterAlloc,
    props_regeff_c => ManagerKind::RegEffC,
    props_regeff_cf => ManagerKind::RegEffCF,
    props_regeff_cm => ManagerKind::RegEffCM,
    props_regeff_cfm => ManagerKind::RegEffCFM,
    props_halloc => ManagerKind::Halloc,
    props_ouro_s_p => ManagerKind::OuroSP,
    props_ouro_s_c => ManagerKind::OuroSC,
    props_ouro_va_p => ManagerKind::OuroVAP,
    props_ouro_va_c => ManagerKind::OuroVAC,
    props_ouro_vl_p => ManagerKind::OuroVLP,
    props_ouro_vl_c => ManagerKind::OuroVLC,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// The prefix-sum baseline equals a sequential fold for any input.
    #[test]
    fn prefix_scan_matches_sequential(sizes in proptest::collection::vec(1u64..5000, 0..300)) {
        use gpumemsurvey::gpu_workloads::prefix::{scan_allocate, ELEM_ALIGN};
        let r = scan_allocate(&sizes, 0, 4);
        let mut acc = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            prop_assert_eq!(r.offsets[i].offset(), acc);
            acc += gpumemsurvey::core::util::align_up(s, ELEM_ALIGN);
        }
        prop_assert_eq!(r.total, acc);
    }

    /// The coalescing model is monotone: spreading a warp's pointers apart
    /// never reduces the transaction count.
    #[test]
    fn access_model_monotone_in_stride(stride_a in 4u64..64, extra in 1u64..128) {
        use gpumemsurvey::gpu_sim::access::warp_transactions;
        let stride_b = stride_a + extra;
        let a: Vec<DevicePtr> = (0..32).map(|i| DevicePtr::new(i * stride_a)).collect();
        let b: Vec<DevicePtr> = (0..32).map(|i| DevicePtr::new(i * stride_b)).collect();
        prop_assert!(warp_transactions(&a, 4) <= warp_transactions(&b, 4));
    }

    /// Address-range tracking equals the trivial min/max computation.
    #[test]
    fn address_range_matches_minmax(
        entries in proptest::collection::vec((0u64..1_000_000, 1u64..512), 1..100)
    ) {
        use gpumemsurvey::core::frag::AddressRange;
        let mut r = AddressRange::new();
        for &(off, size) in &entries {
            r.record(DevicePtr::new(off), size);
        }
        let lo = entries.iter().map(|&(o, _)| o).min().unwrap();
        let hi = entries.iter().map(|&(o, s)| o + s).max().unwrap();
        prop_assert_eq!(r.range(), hi - lo);
        prop_assert_eq!(r.count(), entries.len() as u64);
    }

    /// Device RNG ranges always respect their bounds.
    #[test]
    fn device_rng_bounds(seed in any::<u64>(), lo in 1u64..1000, span in 0u64..9000) {
        let mut rng = gpumemsurvey::core::util::DeviceRng::new(seed);
        let hi = lo + span;
        for _ in 0..50 {
            let v = rng.range_u64(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
        }
    }
}
