//! Conformance battery: one set of behavioural requirements, executed
//! against every evaluated manager. Complements the per-crate unit tests
//! (which exercise internals) with black-box checks through the public
//! trait only.

use gpumemsurvey::bench::registry::{ManagerKind, DEFAULT_KINDS};
use gpumemsurvey::core::sanitize::Sanitized;
use gpumemsurvey::core::util::next_pow2;
use gpumemsurvey::prelude::*;

const HEAP: u64 = 64 << 20;

fn kinds_with_free() -> impl Iterator<Item = ManagerKind> {
    DEFAULT_KINDS.into_iter().filter(|k| *k != ManagerKind::Atomic)
}

fn worst_case_footprint(kind: ManagerKind, size: u64) -> u64 {
    // Upper bound of the space a manager may legitimately consume for one
    // request (class rounding / page rounding / headers).
    let _ = kind;
    next_pow2(size.max(16)).max(32) * 2 + 4096
}

#[test]
fn boundary_sizes_roundtrip() {
    // Exact power-of-two boundaries and their neighbours are where class
    // rounding bugs live.
    let sizes: Vec<u64> = (4..=13)
        .flat_map(|e| {
            let p = 1u64 << e;
            [p - 1, p, p + 1]
        })
        .collect();
    for kind in DEFAULT_KINDS {
        let alloc = kind.builder().heap(HEAP).sms(80).build();
        let ctx = ThreadCtx::host();
        for &size in &sizes {
            let p = alloc
                .malloc(&ctx, size)
                .unwrap_or_else(|e| panic!("{} size {size}: {e}", kind.label()));
            alloc.heap().fill(p, size, 0x42);
            assert_eq!(alloc.heap().read_u8(p, size - 1), 0x42);
            if alloc.info().supports_free {
                alloc.free(&ctx, p).unwrap_or_else(|e| panic!("{} size {size}: {e}", kind.label()));
            }
        }
    }
}

#[test]
fn one_byte_allocations_are_usable() {
    for kind in DEFAULT_KINDS {
        let alloc = kind.builder().heap(HEAP).sms(80).build();
        let ctx = ThreadCtx::host();
        let a = alloc.malloc(&ctx, 1).unwrap();
        let b = alloc.malloc(&ctx, 1).unwrap();
        assert_ne!(a, b, "{}", kind.label());
        alloc.heap().fill(a, 1, 1);
        alloc.heap().fill(b, 1, 2);
        assert_eq!(alloc.heap().read_u8(a, 0), 1, "{}", kind.label());
        assert_eq!(alloc.heap().read_u8(b, 0), 2, "{}", kind.label());
    }
}

#[test]
fn free_in_reverse_and_random_order() {
    for kind in kinds_with_free() {
        let alloc = kind.builder().heap(HEAP).sms(80).build();
        let ctx = ThreadCtx::host();
        // Reverse order.
        let ptrs: Vec<DevicePtr> =
            (0..200).map(|i| alloc.malloc(&ctx, 32 + (i % 8) * 64).unwrap()).collect();
        for p in ptrs.iter().rev() {
            alloc.free(&ctx, *p).unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
        }
        // Pseudo-random order.
        let mut ptrs: Vec<DevicePtr> =
            (0..200).map(|i| alloc.malloc(&ctx, 16 + (i % 16) * 48).unwrap()).collect();
        let mut state = 0x12345u64;
        while !ptrs.is_empty() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = (state >> 33) as usize % ptrs.len();
            let p = ptrs.swap_remove(i);
            alloc.free(&ctx, p).unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
        }
    }
}

#[test]
fn churn_does_not_leak_space() {
    // Allocate/free the same demand many times; if a manager leaks per
    // cycle, the heap eventually refuses a demand it previously served.
    for kind in kinds_with_free() {
        let alloc = kind.builder().heap(16 << 20).sms(80).build();
        let ctx = ThreadCtx::host();
        for cycle in 0..50 {
            let ptrs: Vec<DevicePtr> = (0..256)
                .map(|i| {
                    alloc
                        .malloc(&ctx, 64 + (i % 4) * 256)
                        .unwrap_or_else(|e| panic!("{} leaked by cycle {cycle}: {e}", kind.label()))
                })
                .collect();
            for p in ptrs {
                alloc.free(&ctx, p).unwrap();
            }
        }
    }
}

#[test]
fn interleaved_lifetimes() {
    // Long-lived allocations pinned while short-lived churn happens around
    // them; pinned payloads must survive.
    for kind in kinds_with_free() {
        let alloc = kind.builder().heap(32 << 20).sms(80).build();
        let ctx = ThreadCtx::host();
        let pinned: Vec<(DevicePtr, u8)> = (0..32)
            .map(|i| {
                let p = alloc.malloc(&ctx, 512).unwrap();
                let tag = (i as u8) | 0x80;
                alloc.heap().fill(p, 512, tag);
                (p, tag)
            })
            .collect();
        for round in 0..20 {
            let churn: Vec<DevicePtr> = (0..128)
                .map(|i| {
                    let p = alloc.malloc(&ctx, 16 + ((round + i) % 32) * 32).unwrap();
                    alloc.heap().fill(p, 16, 0x0f);
                    p
                })
                .collect();
            for p in churn {
                alloc.free(&ctx, p).unwrap();
            }
        }
        for (p, tag) in pinned {
            assert_eq!(alloc.heap().read_u8(p, 511), tag, "{}", kind.label());
            alloc.free(&ctx, p).unwrap();
        }
    }
}

#[test]
fn null_and_foreign_pointers_rejected_by_free() {
    for kind in kinds_with_free() {
        let alloc = kind.builder().heap(HEAP).sms(80).build();
        let ctx = ThreadCtx::host();
        assert_eq!(
            alloc.free(&ctx, DevicePtr::NULL),
            Err(AllocError::InvalidPointer),
            "{}",
            kind.label()
        );
        // An offset that was never returned: either rejected or — for
        // designs whose pointer math cannot distinguish it (none today) —
        // at minimum must not panic. We require rejection.
        let bogus = DevicePtr::new(alloc.heap().len() - 8);
        assert!(
            alloc.free(&ctx, bogus).is_err(),
            "{}: freeing a never-allocated pointer must fail",
            kind.label()
        );
    }
}

#[test]
fn alignment_declared_equals_alignment_observed() {
    for kind in DEFAULT_KINDS {
        let alloc = kind.builder().heap(HEAP).sms(80).build();
        let info = alloc.info();
        let ctx = ThreadCtx::host();
        for size in [1u64, 3, 17, 100, 1000, 5000] {
            let p = alloc.malloc(&ctx, size).unwrap();
            assert!(
                p.is_aligned(info.alignment),
                "{}: declared {} but got {p:?} for size {size}",
                info.label(),
                info.alignment
            );
        }
    }
}

#[test]
fn oversize_requests_fail_cleanly() {
    for kind in DEFAULT_KINDS {
        let alloc = kind.builder().heap(HEAP).sms(80).build();
        let ctx = ThreadCtx::host();
        let r = alloc.malloc(&ctx, HEAP * 2);
        assert!(
            matches!(r, Err(AllocError::OutOfMemory(_)) | Err(AllocError::UnsupportedSize(_))),
            "{}: {r:?}",
            kind.label()
        );
        // The manager remains usable afterwards — except the Atomic
        // baseline, which documents that its bump offset is never rolled
        // back ("no true memory manager", §4).
        if kind != ManagerKind::Atomic {
            assert!(alloc.malloc(&ctx, 64).is_ok(), "{}", kind.label());
        }
    }
}

#[test]
fn per_allocation_space_overhead_is_bounded() {
    // Allocate a known demand and verify the manager fits it into a
    // reasonable envelope (catches gross layout regressions). The
    // CUDA-Allocator model is exempt: it deliberately carves units from
    // both ends of its region (the paper's maximum-address-range
    // fragmentation signature, §4.3.1), so its address span is the whole
    // heap by design.
    for kind in kinds_with_free().filter(|k| *k != ManagerKind::CudaAllocator) {
        let alloc = kind.builder().heap(HEAP).sms(80).build();
        let ctx = ThreadCtx::host();
        let size = 1000u64;
        let n = 1000u64;
        let mut max_end = 0u64;
        for _ in 0..n {
            let p = alloc.malloc(&ctx, size).unwrap();
            max_end = max_end.max(p.offset() + size);
        }
        let budget: u64 = n * worst_case_footprint(kind, size);
        assert!(
            max_end <= budget + HEAP / 4,
            "{}: {n}x{size} B spread to {max_end} (> budget {budget})",
            kind.label()
        );
    }
}

#[test]
fn sanitized_mixed_workload_is_clean_for_every_manager() {
    // The whole battery above checks behaviour the caller can observe; this
    // one puts the shadow-heap sanitizer between the test and the manager so
    // overlaps, bounds/alignment violations and free-path bugs are caught
    // even when the workload would not notice them.
    for kind in DEFAULT_KINDS {
        let san = Sanitized::new(kind.builder().heap(HEAP).sms(80).build());
        let info = san.info();
        let ctx = ThreadCtx::host();
        for cycle in 0..3u64 {
            let ptrs: Vec<DevicePtr> = (0..128)
                .map(|i| san.malloc(&ctx, 16 + ((cycle * 7 + i) % 24) * 40).unwrap())
                .collect();
            // Warp-collective traffic interleaved with the thread-level churn.
            let w = WarpCtx { warp: cycle as u32, block: 0, sm: 2 };
            let mut warp_out = [DevicePtr::NULL; 16];
            san.malloc_warp(&w, &[96; 16], &mut warp_out).unwrap();
            if info.supports_free {
                san.free_warp(&w, &warp_out).unwrap();
                for p in ptrs {
                    san.free(&ctx, p).unwrap();
                }
            }
        }
        let report = san.take_report();
        assert!(report.is_clean(), "{}: {report}", kind.label());
        if info.supports_free {
            assert_eq!(report.live, 0, "{}: everything was freed", kind.label());
        }
    }
}

#[test]
fn launched_alloc_free_roundtrip_every_kind() {
    // Same black-box contract as the host-ctx tests, but driven through the
    // executor: every evaluated manager serves a full device launch where
    // each thread allocates, writes, reads back and frees. Honouring
    // `GMS_WORKERS` (the device is built with `Device::new`) makes this the
    // test the `GMS_WORKERS=1` determinism pass in scripts/check.sh leans on.
    use gpumemsurvey::core::WARP_SIZE;
    use std::sync::atomic::{AtomicU64, Ordering};
    let device = Device::new(DeviceSpec::titan_v());
    let threads = 4096u32;
    for kind in DEFAULT_KINDS {
        let alloc = kind.builder().heap(HEAP).sms(device.spec().num_sms).build();
        let supports_free = alloc.info().supports_free;
        let failures = AtomicU64::new(0);
        let (_, sched) = device.launch_with_stats(threads, |ctx| {
            let size = 16 + (u64::from(ctx.thread_id) % 16) * 24;
            match alloc.malloc(ctx, size) {
                Ok(p) => {
                    let tag = (ctx.thread_id % 251) as u8;
                    alloc.heap().fill(p, size, tag);
                    if alloc.heap().read_u8(p, size - 1) != tag {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                    if supports_free && alloc.free(ctx, p).is_err() {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(_) => {
                    failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert_eq!(failures.load(Ordering::Relaxed), 0, "{}", kind.label());
        // Every warp of the launch is accounted to some worker.
        let total: u32 = sched.warps_per_worker.iter().sum();
        assert_eq!(total, threads.div_ceil(WARP_SIZE), "{}", kind.label());
    }
}

#[test]
fn warp_and_thread_allocations_coexist() {
    for kind in kinds_with_free() {
        let alloc = kind.builder().heap(HEAP).sms(80).build();
        let ctx = ThreadCtx::host();
        let w = WarpCtx { warp: 3, block: 0, sm: 1 };
        let t1 = alloc.malloc(&ctx, 128).unwrap();
        let mut warp_out = [DevicePtr::NULL; 8];
        alloc.malloc_warp(&w, &[64; 8], &mut warp_out).unwrap();
        let t2 = alloc.malloc(&ctx, 128).unwrap();
        // All distinct, all freeable in any order.
        let mut all = vec![t1, t2];
        all.extend(warp_out);
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "{}", kind.label());
        for p in all {
            alloc.free(&ctx, p).unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
        }
    }
}
