//! Backend conformance battery: the heap substrate contract, executed
//! against every available [`HeapBackendKind`]. The allocator-facing
//! conformance suite (`tests/conformance.rs`) runs over whichever backend
//! `GMS_HEAP_BACKEND` selects; this file pins the cross-backend guarantees
//! that make that interchangeability sound:
//!
//! * every backend hands out zero-initialised, 128-aligned memory with
//!   working in-heap atomics,
//! * every manager constructs and serves a workload over every backend,
//! * a deterministic workload produces byte-identical results on the RAM
//!   and mmap backends at the same heap size, and
//! * (gated on `HUGE_HEAP=1`) the paper's full 8 GiB heap actually opens
//!   and serves allocations through the mmap backend.

use std::sync::Arc;

use gpumemsurvey::bench::registry::{ManagerKind, DEFAULT_KINDS};
use gpumemsurvey::core::sanitize::Sanitized;
use gpumemsurvey::prelude::*;

const HEAP: u64 = 64 << 20;

fn available_backends() -> impl Iterator<Item = HeapBackendKind> {
    HeapBackendKind::ALL.into_iter().filter(|b| b.available())
}

fn heap_on(backend: HeapBackendKind, len: u64) -> Arc<DeviceHeap> {
    let spec = HeapSpec::new(len).with_backend(backend);
    Arc::new(DeviceHeap::try_new(spec).unwrap_or_else(|e| panic!("{backend}: {e}")))
}

#[test]
fn every_backend_meets_the_heap_contract() {
    for backend in available_backends() {
        let heap = heap_on(backend, HEAP);
        assert_eq!(heap.len(), HEAP, "{backend}");
        assert_eq!(heap.backend_kind(), backend);

        // Zero-initialised, including far past the first page.
        for off in [0u64, 4096, HEAP / 2, HEAP - 1] {
            assert_eq!(heap.read_u8(DevicePtr::new(off), 0), 0, "{backend} @{off}");
        }
        // Writable and readable across the whole range.
        heap.fill(DevicePtr::new(HEAP - 256), 256, 0xA5);
        assert_eq!(heap.read_u8(DevicePtr::new(HEAP - 1), 0), 0xA5, "{backend}");
        // In-heap atomics work wherever allocator headers may live.
        let a = heap.atomic_u32(HEAP / 2);
        a.store(7, std::sync::atomic::Ordering::SeqCst);
        assert_eq!(a.load(std::sync::atomic::Ordering::SeqCst), 7, "{backend}");
        // Explicit commit is idempotent and preserves committed data.
        heap.commit(HEAP - 4096, 4096);
        assert_eq!(heap.read_u8(DevicePtr::new(HEAP - 1), 0), 0xA5, "{backend}");
    }
}

#[test]
fn every_manager_serves_every_backend() {
    let ctx = ThreadCtx::host();
    for backend in available_backends() {
        for kind in DEFAULT_KINDS {
            let alloc = kind.builder().heap(HEAP).heap_backend(backend).sms(80).build();
            let mut ptrs = Vec::new();
            for i in 0..64u64 {
                let size = 16 + (i % 8) * 96;
                let p = alloc
                    .malloc(&ctx, size)
                    .unwrap_or_else(|e| panic!("{backend}/{}: {e}", kind.label()));
                alloc.heap().fill(p, size, (i % 251) as u8 | 1);
                assert_eq!(
                    alloc.heap().read_u8(p, size - 1),
                    (i % 251) as u8 | 1,
                    "{backend}/{}",
                    kind.label()
                );
                ptrs.push(p);
            }
            if alloc.info().supports_free {
                for p in ptrs {
                    alloc
                        .free(&ctx, p)
                        .unwrap_or_else(|e| panic!("{backend}/{}: {e}", kind.label()));
                }
            }
        }
    }
}

#[test]
fn sanitizer_battery_is_clean_on_every_backend() {
    let ctx = ThreadCtx::host();
    for backend in available_backends() {
        for kind in DEFAULT_KINDS {
            let san =
                Sanitized::new(kind.builder().heap(HEAP).heap_backend(backend).sms(80).build());
            let info = san.info();
            let ptrs: Vec<DevicePtr> =
                (0..96u64).map(|i| san.malloc(&ctx, 16 + (i % 24) * 40).unwrap()).collect();
            let w = WarpCtx { warp: 1, block: 0, sm: 2 };
            let mut warp_out = [DevicePtr::NULL; 8];
            san.malloc_warp(&w, &[96; 8], &mut warp_out).unwrap();
            if info.supports_free {
                san.free_warp(&w, &warp_out).unwrap();
                for p in ptrs {
                    san.free(&ctx, p).unwrap();
                }
            }
            let report = san.take_report();
            assert!(report.is_clean(), "{backend}/{}: {report}", kind.label());
        }
    }
}

/// Runs a fixed single-threaded alloc/write/free sequence and returns the
/// pointer trail; also leaves the written payloads in place for comparison.
fn deterministic_sequence(alloc: &dyn DeviceAllocator) -> Vec<(DevicePtr, u64)> {
    let ctx = ThreadCtx::host();
    let mut out = Vec::new();
    let mut state = 0x5eedu64;
    for i in 0..256u64 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let size = 16 + (state >> 33) % 2048;
        let p = alloc.malloc(&ctx, size).unwrap_or_else(|e| panic!("step {i}: {e}"));
        alloc.heap().fill(p, size, (i % 251) as u8 | 1);
        out.push((p, size));
        // Free every third allocation immediately to exercise reuse paths.
        if alloc.info().supports_free && i % 3 == 2 {
            let (q, _) = out[out.len() - 2];
            alloc.free(&ctx, q).unwrap();
        }
    }
    out
}

#[test]
fn ram_and_mmap_runs_are_byte_identical() {
    if !HeapBackendKind::Mmap.available() {
        return;
    }
    // Same manager, same heap size, same deterministic workload — only the
    // substrate differs. The pointer trail and the bytes behind it must
    // match exactly, page by page.
    for kind in [ManagerKind::ScatterAlloc, ManagerKind::OuroSP, ManagerKind::Halloc] {
        let ram = kind.builder().heap(HEAP).heap_backend(HeapBackendKind::Ram).sms(80).build();
        let map = kind.builder().heap(HEAP).heap_backend(HeapBackendKind::Mmap).sms(80).build();
        let ram_trail = deterministic_sequence(ram.as_ref());
        let map_trail = deterministic_sequence(map.as_ref());
        assert_eq!(ram_trail, map_trail, "{}: pointer trails diverge", kind.label());
        // Compare the full heap image at every page boundary plus every
        // allocation's first and last byte.
        for off in (0..HEAP).step_by(4096) {
            assert_eq!(
                ram.heap().read_u8(DevicePtr::new(off), 0),
                map.heap().read_u8(DevicePtr::new(off), 0),
                "{}: heap images diverge at {off}",
                kind.label()
            );
        }
        for &(p, size) in &ram_trail {
            for idx in [0, size - 1] {
                assert_eq!(
                    ram.heap().read_u8(p, idx),
                    map.heap().read_u8(p, idx),
                    "{}: payload diverges at {p:?}+{idx}",
                    kind.label()
                );
            }
        }
    }
}

#[test]
fn huge_heap_smoke_mmap_8gib() {
    // The paper's actual configuration: an 8 GiB device heap. Gated behind
    // HUGE_HEAP=1 because it reserves (not commits) 8 GiB of address space
    // and touches a sparse subset — cheap, but not something every `cargo
    // test` should do. `scripts/check.sh` runs it in the mmap stage.
    if std::env::var("HUGE_HEAP").map(|v| v == "1") != Ok(true) {
        return;
    }
    if !HeapBackendKind::Mmap.available() {
        return;
    }
    const EIGHT_GIB: u64 = 8 << 30;
    let ctx = ThreadCtx::host();
    let alloc = ManagerKind::ScatterAlloc
        .builder()
        .heap(EIGHT_GIB)
        .heap_backend(HeapBackendKind::Mmap)
        .sms(80)
        .build();
    assert_eq!(alloc.heap().len(), EIGHT_GIB);
    // Allocations land, are writable, and read back across the heap.
    for i in 0..512u64 {
        let size = 256 + (i % 16) * 1024;
        let p = alloc.malloc(&ctx, size).unwrap_or_else(|e| panic!("step {i}: {e}"));
        alloc.heap().fill(p, size, (i % 251) as u8 | 1);
        assert_eq!(alloc.heap().read_u8(p, size - 1), (i % 251) as u8 | 1);
    }
    // And the far end of the reservation is live too.
    alloc.heap().fill(DevicePtr::new(EIGHT_GIB - 4096), 4096, 0x5A);
    assert_eq!(alloc.heap().read_u8(DevicePtr::new(EIGHT_GIB - 1), 0), 0x5A);
}

#[test]
fn builder_surfaces_typed_heap_errors() {
    for bad_len in [100u64, 0] {
        let err = match ManagerKind::Atomic.builder().heap(bad_len).try_build() {
            Err(e) => e,
            Ok(_) => panic!("len {bad_len} must be rejected"),
        };
        assert!(matches!(err, HeapError::InvalidLen { .. }), "{err}");
    }
    // An over-the-address-space mmap reservation fails as a typed error,
    // not an abort (exact variant depends on the host's overcommit policy).
    if HeapBackendKind::Mmap.available() {
        let spec = HeapSpec::mmap(1 << 55);
        if let Err(e) = DeviceHeap::try_new(spec) {
            assert!(matches!(e, HeapError::ReserveFailed { .. }), "unexpected error shape: {e}");
        }
    }
}
