//! Shape tests: coarse, robust assertions that the reproduction exhibits
//! the *relative* behaviours the paper reports. These deliberately use wide
//! margins (≥ 2-3×) so they hold on any host; EXPERIMENTS.md records the
//! exact measured values.

use std::time::Duration;

use gpumemsurvey::bench::registry::ManagerKind;
use gpumemsurvey::bench::runners::{self, Bench};
use gpumemsurvey::gpu_workloads::write_test::WritePattern;
use gpumemsurvey::prelude::*;

fn bench() -> Bench {
    let mut b = Bench::new(Device::with_workers(DeviceSpec::titan_v(), 4));
    b.iterations = 2;
    b.cell_timeout = Duration::from_secs(30);
    b
}

/// §4.2.1 / Fig. 9: for small thread-based allocations, the CUDA-Allocator
/// model is consistently slower than ScatterAlloc and page-based Ouroboros,
/// and its deallocation is the slowest in the field.
#[cfg_attr(debug_assertions, ignore = "timing-ratio shape: run with --release")]
#[test]
fn cuda_allocator_is_outperformed_for_small_sizes() {
    let b = bench();
    let n = 10_000;
    let cuda = runners::alloc_perf(&b, ManagerKind::CudaAllocator, n, 64, false);
    let scatter = runners::alloc_perf(&b, ManagerKind::ScatterAlloc, n, 64, false);
    let ouro = runners::alloc_perf(&b, ManagerKind::OuroVLP, n, 64, false);
    // Free: CUDA clearly slowest (paper: "only approach with deallocation
    // performance consistently above 1 ms").
    let cuda_free = cuda.free.unwrap();
    assert!(
        cuda_free > scatter.free.unwrap() * 3,
        "cuda free {cuda_free:?} vs scatter {:?}",
        scatter.free.unwrap()
    );
    assert!(
        cuda_free > ouro.free.unwrap() * 3,
        "cuda free {cuda_free:?} vs ouroboros {:?}",
        ouro.free.unwrap()
    );
}

/// §4.2.1: the CUDA-Allocator model's characteristic spike right before its
/// 2048 B unit split, with performance recovering after it.
#[cfg_attr(debug_assertions, ignore = "timing-ratio shape: run with --release")]
#[test]
fn cuda_allocator_unit_split_at_2048() {
    let b = bench();
    let at_2048 = runners::alloc_perf(&b, ManagerKind::CudaAllocator, 10_000, 2048, false);
    let at_4096 = runners::alloc_perf(&b, ManagerKind::CudaAllocator, 10_000, 4096, false);
    let at_64 = runners::alloc_perf(&b, ManagerKind::CudaAllocator, 10_000, 64, false);
    assert!(
        at_2048.alloc > at_64.alloc * 2,
        "staircase: 2048 B ({:?}) must dwarf 64 B ({:?})",
        at_2048.alloc,
        at_64.alloc
    );
    assert!(
        at_4096.alloc < at_2048.alloc,
        "past the split, the large path recovers: {:?} vs {:?}",
        at_4096.alloc,
        at_2048.alloc
    );
}

/// §4.2.1: ScatterAlloc's steep drop once requests leave the single page
/// (the search for contiguous free pages).
#[cfg_attr(debug_assertions, ignore = "timing-ratio shape: run with --release")]
#[test]
fn scatteralloc_multipage_cliff() {
    let b = bench();
    let single = runners::alloc_perf(&b, ManagerKind::ScatterAlloc, 10_000, 2048, false);
    let multi = runners::alloc_perf(&b, ManagerKind::ScatterAlloc, 10_000, 8192, false);
    assert!(
        multi.alloc > single.alloc * 3,
        "multipage {:?} must be a cliff vs single-page {:?}",
        multi.alloc,
        single.alloc
    );
    // While page-based Ouroboros stays flat over the same boundary (paper:
    // "considerably outperform all other approaches for larger sizes").
    let ouro = runners::alloc_perf(&b, ManagerKind::OuroSP, 10_000, 8192, false);
    assert!(
        ouro.alloc < multi.alloc / 3,
        "ouroboros {:?} must beat scatter {:?} at 8 KiB",
        ouro.alloc,
        multi.alloc
    );
}

/// §4.3.1 / Fig. 11a: Ouroboros stays close to the packed baseline while
/// the CUDA-Allocator model spans (nearly) its whole region.
#[test]
fn fragmentation_ordering() {
    let b = bench();
    let ouro = runners::fragmentation(&b, ManagerKind::OuroVAC, 10_000, 256, 2);
    assert!(
        ouro.initial.expansion_factor() < 3.0,
        "ouroboros expansion {}",
        ouro.initial.expansion_factor()
    );
    let cuda = runners::fragmentation(&b, ManagerKind::CudaAllocator, 256, 4096, 0);
    // One small+large split already spans most of the heap in the model;
    // with only large allocations the top-down layout dominates: range must
    // vastly exceed demand.
    assert!(
        cuda.initial.expansion_factor() > ouro.initial.expansion_factor(),
        "cuda {} vs ouro {}",
        cuda.initial.expansion_factor(),
        ouro.initial.expansion_factor()
    );
}

/// §4.3.2 / Fig. 11b: Ouroboros reaches ≥ 95 % utilization; Halloc is held
/// back by its CUDA section; the 16 B alignment floor shows below 16 B.
#[test]
fn oom_utilization_ordering() {
    let b = bench();
    let ouro = runners::oom(&b, ManagerKind::OuroSC, 64 << 20, 1024);
    assert!(ouro.utilization > 0.9, "ouroboros OOM utilization {}", ouro.utilization);
    let halloc = runners::oom(&b, ManagerKind::Halloc, 64 << 20, 1024);
    assert!(
        halloc.utilization < ouro.utilization,
        "halloc {} must trail ouroboros {} (reserved CUDA section)",
        halloc.utilization,
        ouro.utilization
    );
    // Sub-16 B requests burn the 16 B minimum: utilization ratio ~size/16.
    let tiny = runners::oom(&b, ManagerKind::OuroSC, 64 << 20, 4);
    assert!(
        tiny.utilization < 0.5,
        "4 B allocations cannot beat the 16 B grain: {}",
        tiny.utilization
    );
}

/// §4.4.1 / Fig. 11c: for small per-thread outputs at moderate thread
/// counts, the recommended managers beat the prefix-sum baseline.
#[cfg_attr(debug_assertions, ignore = "timing-ratio shape: run with --release")]
#[test]
fn workgen_beats_baseline_at_moderate_counts() {
    let b = bench();
    let n = 4096;
    // Single-pass wall-clocks on an oversubscribed host can absorb a whole
    // scheduler timeslice; min-of-2 keeps the ratio about the workload.
    let min2 = |f: &dyn Fn() -> Duration| f().min(f());
    let base = min2(&|| runners::work_generation_baseline(&b, n, 4, 64).elapsed);
    for kind in [ManagerKind::ScatterAlloc, ManagerKind::OuroSP, ManagerKind::Halloc] {
        let c = runners::work_generation(&b, kind, n, 4, 64);
        assert_eq!(c.failures, 0);
        let elapsed = min2(&|| runners::work_generation(&b, kind, n, 4, 64).elapsed).min(c.elapsed);
        assert!(
            elapsed < base * 4,
            "{} ({elapsed:?}) should be in the baseline's ballpark ({base:?}) or better",
            kind.label()
        );
    }
}

/// §4.4.2 / Fig. 11e: well-packed allocators stay close to the coalesced
/// baseline; Reg-Eff's unaligned headers cost extra transactions.
#[test]
fn write_coalescing_ordering() {
    let b = bench();
    let n = 1 << 14;
    let pattern = WritePattern::Uniform { bytes: 32 };
    let ouro = runners::write_performance(&b, ManagerKind::OuroSP, n, pattern);
    let regeff = runners::write_performance(&b, ManagerKind::RegEffC, n, pattern);
    assert!(ouro.relative_cost < 1.5, "ouroboros rel cost {}", ouro.relative_cost);
    assert!(
        regeff.relative_cost > ouro.relative_cost,
        "Reg-Eff ({}) must coalesce worse than Ouroboros ({})",
        regeff.relative_cost,
        ouro.relative_cost
    );
}

/// §4.1: register-footprint proxy ordering — Reg-Eff least, CUDA close,
/// Halloc/ScatterAlloc around 40 for malloc, Ouroboros at/above them,
/// XMalloc's malloc the outlier, everyone's free modest.
#[test]
fn register_footprint_ordering() {
    let fp = |k: ManagerKind| k.builder().heap(64 << 20).sms(80).build().register_footprint();
    let regeff = fp(ManagerKind::RegEffCF);
    let cuda = fp(ManagerKind::CudaAllocator);
    let scatter = fp(ManagerKind::ScatterAlloc);
    let halloc = fp(ManagerKind::Halloc);
    let ouro_c = fp(ManagerKind::OuroSC);
    let ouro_p = fp(ManagerKind::OuroSP);
    let xmalloc = fp(ManagerKind::XMalloc);

    assert!(regeff.malloc < cuda.malloc);
    assert!(cuda.malloc < scatter.malloc);
    assert!((30..=50).contains(&scatter.malloc));
    assert!((30..=50).contains(&halloc.malloc));
    assert!(ouro_c.malloc > ouro_p.malloc, "chunked carries more state");
    assert!(xmalloc.malloc > 2 * ouro_c.malloc, "XMalloc is the outlier");
    for f in [regeff.free, cuda.free, scatter.free, halloc.free, ouro_p.free, xmalloc.free] {
        assert!(f <= 30, "free footprints stay modest: {f}");
    }
}
